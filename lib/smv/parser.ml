exception Error of string * Ast.pos

type stream = { mutable toks : (Lexer.token * Ast.pos) list }

let peek s =
  match s.toks with
  | [] -> (Lexer.EOF, { Ast.line = 0; col = 0 })
  | t :: _ -> t

let advance s = match s.toks with [] -> () | _ :: rest -> s.toks <- rest

let fail_at pos fmt = Format.kasprintf (fun msg -> raise (Error (msg, pos))) fmt

let expect s tok =
  let got, pos = peek s in
  if got = tok then advance s
  else
    fail_at pos "expected %s but found %s" (Lexer.describe tok)
      (Lexer.describe got)

let ident s =
  match peek s with
  | Lexer.IDENT name, _ ->
    advance s;
    name
  | tok, pos -> fail_at pos "expected an identifier, found %s" (Lexer.describe tok)

let mk pos desc = { Ast.desc; pos }

(* ------------------------------------------------------------------ *)
(* Expressions.                                                        *)

let rec p_iff s =
  let a = p_imp s in
  match peek s with
  | Lexer.IFF, pos ->
    advance s;
    mk pos (Ast.Eiff (a, p_iff s))
  | _ -> a

and p_imp s =
  let a = p_or s in
  match peek s with
  | Lexer.IMP, pos ->
    advance s;
    mk pos (Ast.Eimp (a, p_imp s))
  | _ -> a

and p_or s =
  let rec loop a =
    match peek s with
    | Lexer.OR, pos ->
      advance s;
      loop (mk pos (Ast.Eor (a, p_and s)))
    | _ -> a
  in
  loop (p_and s)

and p_and s =
  let rec loop a =
    match peek s with
    | Lexer.AND, pos ->
      advance s;
      loop (mk pos (Ast.Eand (a, p_cmp s)))
    | _ -> a
  in
  loop (p_cmp s)

and p_cmp s =
  let a = p_add s in
  let binop ctor =
    let _, pos = peek s in
    advance s;
    mk pos (ctor a (p_add s))
  in
  match peek s with
  | Lexer.EQ, _ -> binop (fun a b -> Ast.Eeq (a, b))
  | Lexer.NEQ, _ -> binop (fun a b -> Ast.Eneq (a, b))
  | Lexer.LT, _ -> binop (fun a b -> Ast.Elt (a, b))
  | Lexer.LE, _ -> binop (fun a b -> Ast.Ele (a, b))
  | Lexer.GT, _ -> binop (fun a b -> Ast.Egt (a, b))
  | Lexer.GE, _ -> binop (fun a b -> Ast.Ege (a, b))
  | Lexer.KW_in, _ -> binop (fun a b -> Ast.Ein (a, b))
  | _ -> a

and p_add s =
  let rec loop a =
    match peek s with
    | Lexer.PLUS, pos ->
      advance s;
      loop (mk pos (Ast.Eadd (a, p_unary s)))
    | Lexer.MINUS, pos ->
      advance s;
      loop (mk pos (Ast.Esub (a, p_unary s)))
    | Lexer.KW_mod, pos ->
      advance s;
      loop (mk pos (Ast.Emod (a, p_unary s)))
    | _ -> a
  in
  loop (p_unary s)

and p_unary s =
  let tok, pos = peek s in
  let unary ctor =
    advance s;
    mk pos (ctor (p_unary s))
  in
  (* Temporal operators take a whole comparison as operand, so that
     "AX n = 0" reads as AX (n = 0). *)
  let temporal ctor =
    advance s;
    mk pos (ctor (p_cmp s))
  in
  match tok with
  | Lexer.NOT -> unary (fun e -> Ast.Enot e)
  | Lexer.EX -> temporal (fun e -> Ast.Eex e)
  | Lexer.EF -> temporal (fun e -> Ast.Eef e)
  | Lexer.EG -> temporal (fun e -> Ast.Eeg e)
  | Lexer.AX -> temporal (fun e -> Ast.Eax e)
  | Lexer.AF -> temporal (fun e -> Ast.Eaf e)
  | Lexer.AG -> temporal (fun e -> Ast.Eag e)
  | Lexer.BIG_E ->
    advance s;
    let a, b = p_until s in
    mk pos (Ast.Eeu (a, b))
  | Lexer.BIG_A ->
    advance s;
    let a, b = p_until s in
    mk pos (Ast.Eau (a, b))
  | Lexer.MODULE | Lexer.VAR | Lexer.ASSIGN | Lexer.INIT | Lexer.TRANS
  | Lexer.INVAR | Lexer.FAIRNESS | Lexer.DEFINE | Lexer.SPEC | Lexer.KW_init
  | Lexer.KW_next | Lexer.CASE | Lexer.ESAC | Lexer.BOOLEAN | Lexer.TRUE
  | Lexer.FALSE | Lexer.BIG_U | Lexer.IDENT _ | Lexer.INT _ | Lexer.COLON
  | Lexer.SEMI | Lexer.BECOMES | Lexer.EQ | Lexer.NEQ | Lexer.LT | Lexer.LE
  | Lexer.GT | Lexer.GE | Lexer.LBRACE | Lexer.RBRACE | Lexer.LPAREN
  | Lexer.RPAREN | Lexer.LBRACK | Lexer.RBRACK | Lexer.COMMA | Lexer.DOTDOT
  | Lexer.PLUS | Lexer.MINUS | Lexer.KW_mod | Lexer.KW_in
  | Lexer.KW_process | Lexer.AND | Lexer.OR | Lexer.IMP | Lexer.IFF
  | Lexer.EOF ->
    p_primary s

and p_until s =
  expect s Lexer.LBRACK;
  let a = p_iff s in
  expect s Lexer.BIG_U;
  let b = p_iff s in
  expect s Lexer.RBRACK;
  (a, b)

and p_primary s =
  let tok, pos = peek s in
  match tok with
  | Lexer.TRUE ->
    advance s;
    mk pos Ast.Etrue
  | Lexer.FALSE ->
    advance s;
    mk pos Ast.Efalse
  | Lexer.INT n ->
    advance s;
    mk pos (Ast.Eint n)
  | Lexer.IDENT name ->
    advance s;
    mk pos (Ast.Eident name)
  | Lexer.KW_next ->
    advance s;
    expect s Lexer.LPAREN;
    let e = p_iff s in
    expect s Lexer.RPAREN;
    mk pos (Ast.Enext e)
  | Lexer.LPAREN ->
    advance s;
    let e = p_iff s in
    expect s Lexer.RPAREN;
    e
  | Lexer.LBRACE ->
    advance s;
    let rec elems acc =
      let e = p_iff s in
      match peek s with
      | Lexer.COMMA, _ ->
        advance s;
        elems (e :: acc)
      | _ ->
        expect s Lexer.RBRACE;
        List.rev (e :: acc)
    in
    mk pos (Ast.Eset (elems []))
  | Lexer.CASE ->
    advance s;
    let rec branches acc =
      match peek s with
      | Lexer.ESAC, _ ->
        advance s;
        List.rev acc
      | _ ->
        let guard = p_iff s in
        expect s Lexer.COLON;
        let value = p_iff s in
        expect s Lexer.SEMI;
        branches ((guard, value) :: acc)
    in
    let bs = branches [] in
    if bs = [] then fail_at pos "empty case expression";
    mk pos (Ast.Ecase bs)
  | Lexer.MODULE | Lexer.VAR | Lexer.ASSIGN | Lexer.INIT | Lexer.TRANS
  | Lexer.INVAR | Lexer.FAIRNESS | Lexer.DEFINE | Lexer.SPEC | Lexer.KW_init
  | Lexer.ESAC | Lexer.BOOLEAN | Lexer.EX | Lexer.EF | Lexer.EG | Lexer.AX
  | Lexer.AF | Lexer.AG | Lexer.BIG_E | Lexer.BIG_A | Lexer.BIG_U
  | Lexer.COLON | Lexer.SEMI | Lexer.BECOMES | Lexer.EQ | Lexer.NEQ
  | Lexer.LT | Lexer.LE | Lexer.GT | Lexer.GE | Lexer.RBRACE | Lexer.RPAREN
  | Lexer.LBRACK | Lexer.RBRACK | Lexer.COMMA | Lexer.DOTDOT | Lexer.PLUS
  | Lexer.MINUS | Lexer.KW_mod | Lexer.KW_in | Lexer.KW_process | Lexer.NOT
  | Lexer.AND | Lexer.OR | Lexer.IMP | Lexer.IFF | Lexer.EOF ->
    fail_at pos "unexpected %s in expression" (Lexer.describe tok)

(* ------------------------------------------------------------------ *)
(* Declarations.                                                       *)

let rec p_type s =
  let tok, pos = peek s in
  match tok with
  | Lexer.BOOLEAN ->
    advance s;
    Ast.Tbool
  | Lexer.IDENT _ | Lexer.KW_process ->
    let is_process =
      match tok with
      | Lexer.KW_process ->
        advance s;
        true
      | _ -> false
    in
    let mod_name = ident s in
    let args =
      match peek s with
      | Lexer.LPAREN, _ ->
        advance s;
        let rec args acc =
          let e = p_iff s in
          match peek s with
          | Lexer.COMMA, _ ->
            advance s;
            args (e :: acc)
          | _ ->
            expect s Lexer.RPAREN;
            List.rev (e :: acc)
        in
        args []
      | _ -> []
    in
    if is_process then Ast.Tprocess (mod_name, args)
    else Ast.Tinstance (mod_name, args)
  | Lexer.LBRACE ->
    advance s;
    let rec consts acc =
      let c = ident s in
      match peek s with
      | Lexer.COMMA, _ ->
        advance s;
        consts (c :: acc)
      | _ ->
        expect s Lexer.RBRACE;
        List.rev (c :: acc)
    in
    Ast.Tenum (consts [])
  | Lexer.INT lo ->
    advance s;
    expect s Lexer.DOTDOT;
    (match peek s with
    | Lexer.INT hi, _ ->
      advance s;
      Ast.Trange (lo, hi)
    | t, p -> fail_at p "expected an integer, found %s" (Lexer.describe t))
  | t -> fail_at pos "expected a type, found %s" (Lexer.describe t)

and p_vardecls s =
  let rec loop acc =
    match peek s with
    | Lexer.IDENT name, _ ->
      advance s;
      expect s Lexer.COLON;
      let ty = p_type s in
      expect s Lexer.SEMI;
      loop ((name, ty) :: acc)
    | _ -> List.rev acc
  in
  loop []

let p_assigns s =
  let rec loop acc =
    let tok, pos = peek s in
    match tok with
    | Lexer.KW_init | Lexer.KW_next ->
      advance s;
      expect s Lexer.LPAREN;
      let name = ident s in
      expect s Lexer.RPAREN;
      expect s Lexer.BECOMES;
      let e = p_iff s in
      expect s Lexer.SEMI;
      let kind = if tok = Lexer.KW_init then Ast.Ainit else Ast.Anext in
      loop ((kind, name, e, pos) :: acc)
    | Lexer.IDENT name ->
      advance s;
      expect s Lexer.BECOMES;
      let e = p_iff s in
      expect s Lexer.SEMI;
      loop ((Ast.Acurrent, name, e, pos) :: acc)
    | _ -> List.rev acc
  in
  loop []

let p_defines s =
  let rec loop acc =
    match peek s with
    | Lexer.IDENT name, pos ->
      advance s;
      expect s Lexer.BECOMES;
      let e = p_iff s in
      expect s Lexer.SEMI;
      loop ((name, e, pos) :: acc)
    | _ -> List.rev acc
  in
  loop []

let p_decl s =
  let tok, pos = peek s in
  match tok with
  | Lexer.VAR ->
    advance s;
    Ast.Dvar (p_vardecls s)
  | Lexer.DEFINE ->
    advance s;
    Ast.Ddefine (p_defines s)
  | Lexer.ASSIGN ->
    advance s;
    Ast.Dassign (p_assigns s)
  | Lexer.INIT ->
    advance s;
    Ast.Dinit (p_iff s)
  | Lexer.TRANS ->
    advance s;
    Ast.Dtrans (p_iff s)
  | Lexer.INVAR ->
    advance s;
    Ast.Dinvar (p_iff s)
  | Lexer.FAIRNESS ->
    advance s;
    Ast.Dfairness (p_iff s)
  | Lexer.SPEC ->
    advance s;
    Ast.Dspec (p_iff s)
  | t -> fail_at pos "expected a section keyword, found %s" (Lexer.describe t)

let p_module s =
  let _, mod_pos = peek s in
  expect s Lexer.MODULE;
  let mod_name = ident s in
  let params =
    match peek s with
    | Lexer.LPAREN, _ ->
      advance s;
      let rec loop acc =
        let p = ident s in
        match peek s with
        | Lexer.COMMA, _ ->
          advance s;
          loop (p :: acc)
        | _ ->
          expect s Lexer.RPAREN;
          List.rev (p :: acc)
      in
      loop []
    | _ -> []
  in
  let rec decls acc =
    match peek s with
    | (Lexer.EOF | Lexer.MODULE), _ -> List.rev acc
    | _ -> decls (p_decl s :: acc)
  in
  { Ast.mod_name; params; decls = decls []; mod_pos }

let program input =
  let s = { toks = Lexer.tokenize input } in
  let rec modules acc =
    match peek s with
    | Lexer.EOF, _ -> List.rev acc
    | _ -> modules (p_module s :: acc)
  in
  let modules = modules [] in
  (match modules with
  | [] ->
    fail_at { Ast.line = 1; col = 1 } "expected at least one MODULE"
  | _ :: _ -> ());
  { Ast.modules }

let expression input =
  let s = { toks = Lexer.tokenize input } in
  let e = p_iff s in
  (match peek s with
  | Lexer.EOF, _ -> ()
  | tok, pos -> fail_at pos "trailing %s" (Lexer.describe tok));
  e
