(** Module instantiation by flattening.

    SMV programs are hierarchies of parameterised [MODULE]s; the
    semantics is obtained by textually inlining every instance: the
    local names of an instance [m] declared in the parent become
    [m.name], formal parameters are replaced by the (renamed) actual
    argument expressions, and all sections (assignments, constraints,
    fairness, specifications) are merged into one flat module rooted at
    [main].  Enumeration constants live in a single global namespace
    and are not prefixed. *)

exception Error of string * Ast.pos option
(** Unknown module, arity mismatch, recursive instantiation, missing
    [main], or parameters on [main]. *)

type unit_decls = {
  upath : string;  (** ["" ] for the top level, the instance path
                       (e.g. ["p0"]) for a [process] *)
  udecls : Ast.decl list;
}
(** One interleaving unit: the top level, or a [process] instance.
    Declarations of plain (synchronous) instances are merged into
    their enclosing unit. *)

val flatten_units : Ast.program -> unit_decls list
(** Elaborate [main]: the top-level unit first, then one unit per
    [process] instance (transitively).  Inside a process body the
    implicit identifier [running] is renamed to [<path>.running]; the
    compiler binds it to "this process is selected". *)

val flatten : Ast.program -> Ast.decl list
(** All units' declarations concatenated (the synchronous view; only
    correct when there are no [process] instances). *)
