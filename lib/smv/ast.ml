type pos = { line : int; col : int }

type expr = { desc : desc; pos : pos }

and desc =
  | Etrue
  | Efalse
  | Eint of int
  | Eident of string
  | Enext of expr
  | Enot of expr
  | Eand of expr * expr
  | Eor of expr * expr
  | Eimp of expr * expr
  | Eiff of expr * expr
  | Eeq of expr * expr
  | Eneq of expr * expr
  | Elt of expr * expr
  | Ele of expr * expr
  | Egt of expr * expr
  | Ege of expr * expr
  | Eadd of expr * expr
  | Esub of expr * expr
  | Emod of expr * expr
  | Ein of expr * expr  (** set membership: [e in {a, b}] *)
  | Eset of expr list
  | Ecase of (expr * expr) list
  | Eex of expr
  | Eef of expr
  | Eeg of expr
  | Eax of expr
  | Eaf of expr
  | Eag of expr
  | Eeu of expr * expr
  | Eau of expr * expr

type dtype =
  | Tbool
  | Tenum of string list
  | Trange of int * int
  | Tinstance of string * expr list
      (** a submodule instance: module name and actual parameters *)
  | Tprocess of string * expr list
      (** an asynchronously interleaved instance: at each step one
          process (or the top level) runs while the variables owned by
          the others stay frozen *)

type assign_kind = Ainit | Anext | Acurrent

type decl =
  | Dvar of (string * dtype) list
  | Dassign of (assign_kind * string * expr * pos) list
  | Dinit of expr
  | Dtrans of expr
  | Dinvar of expr
  | Dfairness of expr
  | Ddefine of (string * expr * pos) list
  | Dspec of expr

type module_decl = {
  mod_name : string;
  params : string list;
  decls : decl list;
  mod_pos : pos;
}

type program = {
  modules : module_decl list;  (** [main] must be among them *)
}

let pp_pos ppf { line; col } = Format.fprintf ppf "line %d, column %d" line col

let rec pp_expr ppf e =
  let bin op a b = Format.fprintf ppf "(%a %s %a)" pp_expr a op pp_expr b in
  match e.desc with
  | Etrue -> Format.pp_print_string ppf "TRUE"
  | Efalse -> Format.pp_print_string ppf "FALSE"
  | Eint n -> Format.pp_print_int ppf n
  | Eident s -> Format.pp_print_string ppf s
  | Enext a -> Format.fprintf ppf "next(%a)" pp_expr a
  | Enot a -> Format.fprintf ppf "!%a" pp_expr a
  | Eand (a, b) -> bin "&" a b
  | Eor (a, b) -> bin "|" a b
  | Eimp (a, b) -> bin "->" a b
  | Eiff (a, b) -> bin "<->" a b
  | Eeq (a, b) -> bin "=" a b
  | Eneq (a, b) -> bin "!=" a b
  | Elt (a, b) -> bin "<" a b
  | Ele (a, b) -> bin "<=" a b
  | Egt (a, b) -> bin ">" a b
  | Ege (a, b) -> bin ">=" a b
  | Eadd (a, b) -> bin "+" a b
  | Esub (a, b) -> bin "-" a b
  | Emod (a, b) -> bin "mod" a b
  | Ein (a, b) -> bin "in" a b
  | Eset es ->
    Format.fprintf ppf "{%a}"
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
         pp_expr)
      es
  | Ecase bs ->
    Format.fprintf ppf "case ";
    List.iter
      (fun (g, v) -> Format.fprintf ppf "%a : %a; " pp_expr g pp_expr v)
      bs;
    Format.fprintf ppf "esac"
  (* temporal operators are parenthesized so that the rendering
     re-parses unambiguously next to comparisons: (AG x) = 1 vs
     AG (x = 1) *)
  | Eex a -> Format.fprintf ppf "(EX %a)" pp_expr a
  | Eef a -> Format.fprintf ppf "(EF %a)" pp_expr a
  | Eeg a -> Format.fprintf ppf "(EG %a)" pp_expr a
  | Eax a -> Format.fprintf ppf "(AX %a)" pp_expr a
  | Eaf a -> Format.fprintf ppf "(AF %a)" pp_expr a
  | Eag a -> Format.fprintf ppf "(AG %a)" pp_expr a
  | Eeu (a, b) -> Format.fprintf ppf "E [%a U %a]" pp_expr a pp_expr b
  | Eau (a, b) -> Format.fprintf ppf "A [%a U %a]" pp_expr a pp_expr b

let expr_to_string e = Format.asprintf "%a" pp_expr e
