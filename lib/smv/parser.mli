(** Recursive-descent parser for the SMV subset.

    Expression precedence, loosest to tightest:
    [<->], [->] (right associative), [|], [&], comparisons
    ([=], [!=], [<], [<=], [>], [>=]), unary ([!], temporal
    operators).  [E [f U g]] and [A [f U g]] are primary forms. *)

exception Error of string * Ast.pos

val program : string -> Ast.program
(** Parse a complete [MODULE main ...] source text; raises {!Error}
    (or {!Lexer.Error}) on malformed input. *)

val expression : string -> Ast.expr
(** Parse a standalone expression (used by tests and the CLI's
    [--spec] flag). *)
