(** Reduced ordered binary decision diagrams (ROBDDs).

    A from-scratch BDD package in the style of the one inside the SMV
    model checker: hash-consed nodes (so structural equality coincides
    with semantic equivalence), a memoised if-then-else kernel, boolean
    connectives, restriction, existential/universal quantification over
    variable cubes, the combined relational product
    [exists cube (f /\ g)], variable renaming, and satisfying-assignment
    extraction.

    Variables are non-negative integers.  Their placement on paths is
    governed by a mutable manager order (a var <-> level bijection):
    every path from a root visits variables in strictly increasing
    {e level}.  A fresh manager uses the identity order (level =
    variable index), under which behaviour is bit-for-bit the historic
    var-indexed one; {!Reorder} changes the order dynamically (Rudell
    sifting) while preserving every external handle and its meaning.
    All operations on diagrams from the same manager are semantically
    pure; diagrams are maximally shared. *)

type man
(** A BDD manager: owns the unique table and the operation caches.
    Diagrams from different managers must never be mixed; doing so is a
    programming error ([Invalid_argument] is *not* guaranteed to be
    raised, because detecting it on every operation would be too
    costly). *)

type t
(** A BDD over the manager it was created from. *)

val create :
  ?unique_size:int -> ?cache_size:int -> ?cache_limit:int -> unit -> man
(** [create ()] makes a fresh manager.  [unique_size] sizes the initial
    node-store columns (rounded to a power of two; the per-variable
    open-addressing subtables start small and grow geometrically as
    nodes land in them), and [cache_size] the initial operation caches.
    [cache_limit], when given, caps every operation cache at the
    largest power of two within it: the caches are direct-mapped, so at
    the cap an insert that collides with a live entry of a different
    key simply overwrites it (counted in [cache_evictions]).  Results
    never change — caches only affect sharing of work — so a limit
    trades recomputation for bounded memory.  Default: unbounded (up to
    a fixed hard cap per cache). *)

val set_cache_limit : man -> int option -> unit
(** Install ([Some n]) or remove ([None]) the operation-cache capacity
    cap; an over-cap cache shrinks immediately.  Raises
    [Invalid_argument] when [n <= 0]. *)

val cache_limit : man -> int option
(** The current operation-cache capacity cap, if bounded. *)

(** {1 Constants and variables} *)

val zero : man -> t
(** The constant false. *)

val one : man -> t
(** The constant true. *)

val var : man -> int -> t
(** [var m v] is the diagram for variable [v].  [v] must be
    non-negative; raises [Invalid_argument] otherwise. *)

val nvar : man -> int -> t
(** [nvar m v] is the negation of variable [v]. *)

(** {1 Structure} *)

val is_zero : t -> bool
val is_one : t -> bool

val id : t -> int
(** Unique id of a node; equal ids (within one manager) mean equal
    functions.  [zero] has id 0 and [one] has id 1. *)

val equal : t -> t -> bool
(** Constant-time semantic equivalence (hash-consing). *)

val compare : t -> t -> int
(** Total order on diagrams by id, for use in sets and maps. *)

val hash : t -> int

val topvar : man -> t -> int
(** Root variable of a non-constant diagram (the variable at the
    diagram's top {e level}; a {!Reorder} sweep can change which
    variable that is for the same handle).
    Raises [Invalid_argument] on constants. *)

val low : man -> t -> t
(** Else-branch (variable false) of a non-constant diagram. *)

val high : man -> t -> t
(** Then-branch (variable true) of a non-constant diagram. *)

(** {1 Boolean connectives} *)

val ite : man -> t -> t -> t -> t
(** [ite m f g h] is (f /\ g) \/ (~f /\ h). *)

val not_ : man -> t -> t
val and_ : man -> t -> t -> t
val or_ : man -> t -> t -> t
val xor : man -> t -> t -> t
val imp : man -> t -> t -> t
val iff : man -> t -> t -> t
val diff : man -> t -> t -> t
(** [diff m f g] is f /\ ~g. *)

val conj : man -> t list -> t
(** Conjunction of a list (true for the empty list). *)

val disj : man -> t list -> t
(** Disjunction of a list (false for the empty list). *)

val subset : man -> t -> t -> bool
(** [subset m f g] holds iff f implies g (as state sets: f ⊆ g). *)

(** {1 Restriction and quantification} *)

val restrict : man -> t -> int -> bool -> t
(** [restrict m f v b] is f with variable [v] fixed to [b]. *)

val cube : man -> int list -> t
(** [cube m vs] is the positive cube over the variables [vs]; used to
    name quantifier scopes.  Duplicates are allowed and ignored. *)

val exists : man -> t -> t -> t
(** [exists m cube f] existentially quantifies the variables of the
    positive cube [cube] out of [f]. *)

val forall : man -> t -> t -> t
(** [forall m cube f] universally quantifies the variables of [cube]. *)

val and_exists : man -> t -> t -> t -> t
(** [and_exists m cube f g] is [exists m cube (and_ m f g)], computed in
    one pass — the relational-product operation at the heart of symbolic
    image computation. *)

val constrain : man -> t -> t -> t
(** [constrain m f c] — the generalized cofactor (Coudert-Madre): a
    function that agrees with [f] everywhere in the care set [c] and is
    arbitrary (chosen to shrink the diagram) outside it, so that
    [c /\ constrain f c = c /\ f].  Model checkers use it to simplify
    intermediate sets against reachability invariants.  Raises
    [Invalid_argument] when [c] is the constant false. *)

(** {1 Cross-manager transfer} *)

val transfer : src:man -> dst:man -> t -> t
(** [transfer ~src ~dst f] — the canonical diagram of [dst] computing
    the same boolean function as [f] (a diagram of [src]), mapped by
    variable {e id} (never by level), so the two managers may hold
    entirely different orders.
    When [dst]'s order agrees with the structure of [f] the copy is a
    memoised structural one — one node-constructor call per distinct
    node of [f], [size] preserved exactly; otherwise it transparently
    falls back to a memoised bottom-up ITE rebuild that
    re-canonicalises in [dst]'s order.  Either way semantic properties
    ([eval], [sat_count], [support]) coincide with [f]'s.

    The copy reads only the node structure of [f] — never the source
    manager's tables — so it is safe to call from a different domain
    than the one that owns the source manager, as long as the source
    manager is quiescent (no operations and no reordering) for the
    duration.  This is the bridge that lets each worker domain of a
    parallel run build a private copy of shared state in its own
    single-domain manager ([Kripke.clone_into] is built on it), even
    when coordinator and workers have sifted to different orders.
    Transferring into the source manager itself returns [f]
    (hash-consing finds the existing nodes). *)

(** {1 Renaming} *)

val rename : man -> t -> (int -> int) -> t
(** [rename m f perm] substitutes variable [perm v] for each variable
    [v] in the support of [f].  [perm] must be injective on the support
    (two source variables mapped to one target would conflate their
    cofactors); violations raise [Invalid_argument] instead of silently
    producing a wrong diagram.  [perm] need not be monotone. *)

(** {1 Inspection} *)

val support : man -> t -> int list
(** Variables occurring in the diagram, sorted increasingly. *)

val size : man -> t -> int
(** Number of distinct internal nodes (constants not counted). *)

val eval : man -> t -> (int -> bool) -> bool
(** Evaluate under an assignment. *)

val sat_count : man -> t -> int -> float
(** [sat_count m f n] is the number of satisfying assignments over the
    variable universe [{0, ..., n-1}], as a float (state spaces beyond
    2^62 still get a meaningful answer).  Every variable in the support
    of [f] must be < [n].  Takes the manager because the gap weighting
    walks the current variable order. *)

val any_sat : man -> t -> (int * bool) list
(** One satisfying {e partial} assignment (the least cube in the
    manager's current order, preferring [false] branches), as
    (variable, value) pairs sorted by variable.  Variables on which the cube does not depend
    (don't-cares) are {e omitted}: any completion of the returned pairs
    satisfies the diagram.  Callers that need one concrete point must
    pin the don't-cares themselves or use {!any_sat_total}.  Raises
    [Not_found] on the constant false. *)

val any_sat_total : man -> t -> vars:int list -> (int * bool) list
(** [any_sat_total m f ~vars] — one satisfying {e total} assignment over
    [vars]: the {!any_sat} cube with every unmentioned variable of
    [vars] pinned to [false] (the lexicographically least satisfying
    point).  The support of [f] must be contained in [vars]; raises
    [Invalid_argument] otherwise and [Not_found] on the constant
    false. *)

val fold_sat :
  man -> t -> int list -> init:'a -> f:('a -> bool array -> 'a) -> 'a
(** [fold_sat m f vars ~init ~f:k] folds [k] over every total
    assignment to [vars] (given as the positions of a bool array
    parallel to [vars]) that satisfies the diagram.  The support of the
    diagram must be contained in [vars].  Assignments are enumerated in
    lexicographic order of the variables {e as ranked by the manager's
    current order} (with [false] < [true]); under the identity order
    that is lexicographic in the given list. *)

val count_nodes : man -> int
(** Number of nodes ever created in the manager (allocation counter;
    not decreased by {!gc}). *)

val live_nodes : man -> int
(** Number of nodes currently in the unique table. *)

val clear_caches : man -> unit
(** Drop the operation caches (the unique table is kept, so canonicity
    is unaffected).  Useful between phases of a long run. *)

(** {1 Statistics} *)

type op_stats = {
  calls : int;   (** recursive invocations, terminal cases included *)
  hits : int;    (** operation-cache hits *)
  misses : int;  (** operation-cache misses *)
}

type stats = {
  ite : op_stats;
  exists : op_stats;
  forall : op_stats;
  relprod : op_stats;  (** {!and_exists}, the relational product *)
  constrain : op_stats;
  live_nodes : int;       (** current unique-table size *)
  peak_nodes : int;       (** largest unique-table size so far *)
  total_nodes : int;      (** nodes ever allocated *)
  cache_evictions : int;  (** direct-mapped cache entries overwritten by a
                              colliding store with a different key *)
  gc_runs : int;
  gc_collected : int;     (** nodes swept across all {!gc} runs *)
  reorders : int;         (** reordering sweeps ({!reorder} and friends) *)
  reorder_ms : float;     (** wall-clock milliseconds spent reordering *)
  reorder_saved : int;    (** net live-node reduction across all sweeps *)
  cache_stores : int;     (** operation-cache insertions across the five
                              caches; hit rate = hits / (hits + misses),
                              overwrite rate = evictions / stores *)
  unique_lookups : int;   (** unique-table find-or-insert operations *)
  unique_probes : int;    (** slots inspected across those lookups; mean
                              probe length = probes / lookups *)
  store_capacity : int;   (** allocated node-store column slots *)
  unique_capacity : int;  (** open-addressing slots across all per-variable
                              subtables; load factor =
                              live_nodes / unique_capacity *)
}
(** A snapshot of the manager's counters. *)

val stats : man -> stats
(** Snapshot the counters (cheap; safe to call on the hot path). *)

val cache_hits : stats -> int
(** Total cache hits across the five operation caches. *)

val cache_misses : stats -> int
(** Total cache misses across the five operation caches. *)

val merge_stats : stats -> stats -> stats
(** Pointwise sum of two snapshots — used to aggregate the per-worker
    managers of a parallel run into a single report.  [peak_nodes] is
    summed too: for managers live at the same time that is an upper
    bound on the simultaneous footprint. *)

val diff_stats : stats -> stats -> stats
(** [diff_stats after before] — the work done between two snapshots of
    the {e same} manager: monotone counters (calls, hits, misses,
    evictions, gc, reorder, [total_nodes]) are subtracted, while the
    instantaneous readings [live_nodes] and [peak_nodes] are taken from
    [after].  This is how a long-lived (warm) manager attributes its
    counters to exactly one request: snapshot on entry, diff on exit —
    the inverse role of {!merge_stats}.  Combine with {!reset_peak}
    when the region's own peak (rather than the manager's lifetime
    peak) is wanted. *)

val reset_peak : man -> unit
(** Restart the [peak_nodes] high-water mark from the current
    unique-table size, leaving every other counter untouched — so the
    next {!stats} snapshot reports the peak {e since this call}. *)

val now_monotonic : unit -> float
(** Seconds on [CLOCK_MONOTONIC] (falling back to the calendar clock
    only where the monotonic clock is unavailable).  All durations and
    deadlines in this package — {!Limits} budgets, reordering times —
    are measured on this clock, so an NTP step can neither spuriously
    breach nor extend a budget.  Only differences between two readings
    are meaningful. *)

val reset_stats : man -> unit
(** Zero every counter; [peak_nodes] restarts from the current
    unique-table size.  Root registrations and caches are untouched. *)

val pp_stats : Format.formatter -> stats -> unit
(** Multi-line human-readable rendering (the [--stats] output). *)

(** {1 Garbage collection}

    The manager never frees nodes on its own: the unique table grows
    monotonically.  {!gc} sweeps it down to the nodes reachable from
    {e registered roots}.  Any diagram a client intends to keep using
    across a [gc] MUST be reachable from some root when [gc] runs —
    using an unrooted survivor afterwards is unsound, because a later
    recomputation would build a fresh node for the same function and
    structural equality would no longer coincide with semantic
    equivalence.  [Kripke.make] registers the model's BDDs
    automatically, and the fixpoint engines root their in-flight
    frontiers, so with those layers only {e extra} long-lived sets
    (saved satisfaction sets, witnesses under construction) need
    explicit roots. *)

type root
(** Handle for a registered root provider. *)

val add_root : man -> (unit -> t list) -> root
(** [add_root m provider] registers a callback yielding diagrams that
    must survive collection; it is invoked at every {!gc}, so it may
    return different (e.g. freshly updated) diagrams each time. *)

val remove_root : man -> root -> unit
(** Unregister a root; unknown handles are ignored. *)

val with_root : man -> (unit -> t list) -> (unit -> 'a) -> 'a
(** [with_root m provider k] runs [k] with [provider] registered,
    unregistering on exit (normal or exceptional). *)

val gc : man -> int
(** Mark from every registered root and sweep unreachable nodes out of
    the unique table; swept store slots go on a free list for reuse by
    later node construction (handles of survivors are untouched — the
    store is swept, never compacted).  The operation caches are dropped
    (they may hold swept handles whose slots will be recycled).
    Returns the number of nodes collected. *)

(** {1 Dynamic variable reordering}

    The manager's variable order is mutable: {!reorder} runs a Rudell
    sifting sweep, {!Reorder} exposes finer-grained control.  A sweep
    is a sequence of adjacent-level exchanges, each of which mutates
    the nodes at the upper level in place — node ids, and therefore
    every external {!t} handle and the boolean function it denotes,
    are preserved; only [size] and the shape below a handle change.
    Reordering drops the operation caches and, like {!gc}, reclaims
    nodes that become unreachable from the registered roots and the
    handles live at the start of the sweep, so the root discipline
    required for {!gc} is exactly the discipline required here.

    Reordering polls any attached {!Limits} between exchanges: a
    deadline or cancellation aborts the sweep mid-way, leaving the
    manager consistent (canonical, reduced) in whatever order the
    completed exchanges produced. *)

val reorder : man -> unit
(** One full sifting sweep: each variable block (see
    {!Reorder.set_pairs}) is moved through all levels and settled at
    the position minimising live nodes, largest blocks first, with a
    1.2x growth abort per block.  No-op on managers with fewer than
    two levels. *)

module Reorder : sig
  val nvars : man -> int
  (** Number of levels (= distinct variables ever created). *)

  val level_of_var : man -> int -> int
  (** Current level of a variable.  Raises [Invalid_argument] if the
      variable has never been created in this manager. *)

  val var_at_level : man -> int -> int
  (** Inverse of {!level_of_var}. *)

  val order : man -> int array
  (** The current order as the array of variables from level 0 down;
      a fresh copy, safe to mutate. *)

  val set_order : man -> int array -> unit
  (** [set_order m ord] installs [ord] (a permutation of
      [0..nvars-1]; a longer array is allowed and pre-creates the
      extra variables).  On an empty manager this is free; otherwise
      it is implemented as a sequence of adjacent exchanges.  Raises
      [Invalid_argument] if [ord] is not a permutation or is too
      short. *)

  val swap : man -> int -> unit
  (** Exchange levels [l] and [l+1].  The primitive every other
      entry point is built from; exposed chiefly for tests. *)

  val sift : man -> unit
  (** Alias of {!Bdd.reorder}. *)

  val set_pairs : man -> (int * int) list -> unit
  (** Declare variable pairs (e.g. current/next state bits) that
      sifting must keep adjacent and move as one block.  Replaces any
      previous pairing.  Raises [Invalid_argument] on self-pairing,
      double-pairing, or negative variables. *)

  val pairs : man -> (int * int) list
  (** The declared pairs, each as [(v, partner)] with [v < partner]. *)

  val set_auto : man -> int option -> unit
  (** [set_auto m (Some n)] arms automatic reordering: whenever live
      nodes exceed the threshold (initially [n]), the manager marks a
      reorder as pending; the next {!checkpoint} inside a
      {!with_checkpoints} region runs the sweep, after which the
      threshold becomes [max (2 * live) n].  [set_auto m None]
      disarms.  Raises [Invalid_argument] on [Some n] with [n <= 0]. *)

  val auto_threshold : man -> int option
  (** The current automatic threshold, if armed. *)

  val pending : man -> bool
  (** Whether an automatic reorder is pending. *)

  val with_checkpoints : man -> (unit -> 'a) -> 'a
  (** Run a computation with {!checkpoint} enabled.  Checkpoints are
      opt-in per region because a sweep reclaims unrooted nodes:
      enable them only where every needed diagram is rooted (fixpoint
      engines root their frontiers; witness construction does not
      enable them). *)

  val checkpoint : man -> unit
  (** If a reorder is pending, automatic reordering is armed, and the
      current region has checkpoints enabled, run {!Bdd.reorder}.
      Cheap no-op otherwise; safe to call from operation tick
      sites. *)
end

(** {1 Resource governance}

    No call into the BDD package (or the checking layers built on it)
    may run forever or exhaust memory silently: a {!Limits.t} carries an
    optional wall-clock deadline, a live-node budget, a coarse-grained
    step budget, and a cooperative-cancellation flag.  Once
    {!Limits.attach}ed to a manager it is polled from the hot operation
    loops (ite / quantification / relational product) every few thousand
    cache probes — measured overhead is well under 2% — and the fixpoint
    and ring-descent engines additionally charge their iterations
    against the step budget through {!Limits.step} / {!Limits.ring_step}.
    A breach raises the single structured exception {!Limits.Exhausted}
    carrying which budget tripped, a {!stats} snapshot, and the partial
    progress recorded so far, so callers can report a truncated result
    instead of hanging or crashing.

    Limits never affect results: a run that completes under limits
    returns exactly what the un-governed run returns, and after a breach
    the manager remains fully usable (hash-consing canonicity is
    unaffected; in-flight roots are unwound by [Fun.protect]). *)

module Limits : sig
  type t
  (** A budget bundle.  Mutable: it accumulates consumed steps and
      partial progress, so use a fresh value per governed call (e.g. per
      specification) unless a shared budget is intended. *)

  (** Which budget tripped. *)
  type breach =
    | Deadline of { timeout : float; elapsed : float }
        (** wall-clock: [timeout] seconds requested, [elapsed] spent *)
    | Node_budget of { budget : int; live : int }
        (** live unique-table nodes exceeded the budget *)
    | Step_budget of { budget : int; steps : int }
        (** fixpoint-iteration / ring-descent steps exceeded the budget *)
    | Interrupted  (** {!cancel} was called (e.g. from a SIGINT handler) *)

  type progress = {
    steps : int;       (** budgeted steps consumed *)
    iterations : int;  (** fixpoint iterations completed *)
    rings : int;       (** ring-descent segments completed *)
    witness_prefix : bool array list;
        (** best-so-far witness path (states as [Kripke.state]-encoded
            bit arrays); empty unless witness construction had begun *)
  }
  (** Partial progress at the moment of the breach. *)

  type info = { breach : breach; stats : stats; progress : progress }

  exception Exhausted of info
  (** The single structured resource-limit exception. *)

  val create :
    ?timeout:float ->
    ?node_budget:int ->
    ?step_budget:int ->
    ?cancel:bool Atomic.t ->
    unit ->
    t
  (** [create ()] makes a budget bundle; omitted budgets are unlimited.
      [timeout] is in seconds, measured from [create] on the monotonic
      clock ({!Bdd.now_monotonic}) — a calendar-clock step (NTP, a
      sysadmin's date change) can neither breach nor extend it.
      [cancel] supplies the cancellation flag instead of a fresh one,
      so several bundles (e.g. one per worker-domain specification) can
      share a single flag: one [Atomic.set] cancels them all, which is
      how SIGINT stops a parallel run.  Raises [Invalid_argument] on
      non-positive budgets. *)

  val unlimited : unit -> t
  (** No budgets — still cancellable, which is how SIGINT handling
      works on runs without explicit limits. *)

  val cancel : t -> unit
  (** Request cooperative cancellation: the next poll point raises
      {!Exhausted} with {!breach} [Interrupted].  The flag is an
      [Atomic.bool], so the request is visible across domains (a plain
      mutable bool would carry no such guarantee), and setting it is
      async-signal-safe, so it may be called from a signal handler. *)

  val cancelled : t -> bool

  val attach : man -> t -> unit
  (** Install the limits on a manager: the BDD operation loops start
      polling it.  At most one limits value is attached at a time; a
      second [attach] replaces the first. *)

  val detach : man -> unit
  val attached : man -> t option

  val with_attached : man -> t -> (unit -> 'a) -> 'a
  (** [with_attached m l k] runs [k] with [l] attached, restoring the
      previously attached limits (if any) on exit — normal or
      exceptional. *)

  val check : man -> t -> unit
  (** Check every budget right now; raises {!Exhausted} on a breach.
      The explicit form of the poll the hot loops run implicitly. *)

  val step : man -> t -> unit
  (** Charge one fixpoint iteration against the step budget, then
      {!check}.  Called by the [Ctl] / [Kripke] / [Ctlstar] fixpoint
      loops once per iteration. *)

  val ring_step : man -> t -> unit
  (** Charge one ring-descent segment against the step budget, then
      {!check}.  Called by [Counterex.Witness] while walking rings. *)

  val note_witness : t -> bool array list -> unit
  (** Record the best-so-far witness path so a later breach reports it
      in {!progress}. *)

  val progress : t -> progress
  (** Snapshot the progress counters (also available without a breach). *)

  val elapsed : t -> float
  (** Seconds since [create]. *)

  val pp_breach : Format.formatter -> breach -> unit
  (** One-line rendering, e.g. ["timeout after 1.02s (limit 1s)"]. *)
end

(** {1 Deterministic fault injection}

    Chaos-testing support: arm a manager to fail at the Nth visit to a
    chosen site, so every recovery path (retry ladders, worker respawn,
    breach handling) is exercisable in CI deterministically rather than
    only under real memory pressure.  A fault is {e one-shot}: it
    disarms itself at the moment it fires, so the attempt that retries
    after recovery runs clean.  Disarmed cost is a single field
    load-and-branch per site visit — unmeasurable (bench E12 tracks
    it).

    Sites [Mk] / [Cache_probe] / [Gc] raise [Out_of_memory] when they
    fire — the same exception genuine allocation pressure at that site
    would surface, so recovery code cannot distinguish injected from
    real faults.  Site [Step] instead trips the attached deadline: the
    Nth {!Limits.step} raises {!Limits.Exhausted} with a [Deadline]
    breach carrying the usual stats snapshot and partial progress. *)

module Fault : sig
  type site =
    | Mk           (** node construction (the unique-table insert path) *)
    | Cache_probe  (** operation-cache lookup *)
    | Gc           (** entry to {!gc} *)
    | Step         (** fixpoint-iteration charge ({!Limits.step}) *)
    | Reorder      (** entry to {!reorder} / {!Reorder.swap} *)

  val arm : man -> site:site -> after:int -> unit
  (** [arm m ~site ~after:n] makes the [n]-th subsequent visit to
      [site] fail ([n >= 1]; raises [Invalid_argument] otherwise).
      Re-arming replaces any previously armed fault — at most one is
      armed per manager. *)

  val disarm : man -> unit
  (** Remove the armed fault, if any. *)

  val armed : man -> (site * int) option
  (** The armed site and its remaining countdown, if any. *)

  val fired : man -> int
  (** How many injected faults this manager has fired so far. *)

  val site_to_string : site -> string
  (** ["mk"] / ["probe"] / ["gc"] / ["step"] / ["reorder"] — the
      [--inject] spelling. *)

  val site_of_string : string -> site option
  (** Inverse of {!site_to_string}; [None] on unknown names. *)
end

val pp : Format.formatter -> t -> unit
(** Debug printer: [false], [true], or [<bdd #id>].  Handles are plain
    ids, so no manager is needed (or available) to render one. *)

val to_dot : ?name:(int -> string) -> man -> t -> string
(** Graphviz rendering; [name] maps variable indices to labels. *)

module Snapshot : sig
  (** Versioned, checksummed binary snapshots of a manager's packed
      node store: columns, free list, var/level permutation, sift
      pairs, zombie slots, and the flattened registered roots.  Unique
      subtables and operation caches are {e derived} state and never
      travel — {!load} rebuilds them from scratch, re-proving the
      canonical invariants for every node, so a snapshot can never
      import a corrupted table.  Handles are preserved bit-for-bit:
      any [t] valid against the dumped manager is valid against the
      loaded one. *)

  exception Corrupt of string
  (** Raised by {!load} / {!restore} on any validation failure: bad
      magic or version, checksum mismatch, truncation, or a violated
      store invariant (duplicate node, child above its level, broken
      free list, slot-accounting mismatch). *)

  val dump : man -> string
  (** Serialise the manager.  The manager is read, not mutated — in
      particular no GC runs, so unrooted intermediate nodes survive
      into the snapshot and a restored manager re-finds them instead
      of re-creating them. *)

  val load : string -> man
  (** Rebuild a manager from {!dump} output.  The restored manager
      carries one static root pinning every handle the dumped
      manager's root providers reached; op-caches start empty.
      @raise Corrupt on any validation failure. *)

  val save : man -> path:string -> unit
  (** {!dump} to [path] atomically (temp file + rename), so a crash
      mid-write can never leave a torn snapshot under [path]. *)

  val restore : path:string -> man
  (** {!load} the file at [path].
      @raise Corrupt on validation failure, [Sys_error] if unreadable. *)
end
