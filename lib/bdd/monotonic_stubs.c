/* CLOCK_MONOTONIC for Bdd.now_monotonic: deadline arithmetic must not
   move when the calendar clock steps (NTP, date(1)).  Returns seconds
   as a double; falls back to the calendar clock only where no
   monotonic clock exists. */

#include <caml/mlvalues.h>
#include <caml/alloc.h>
#include <time.h>

#if defined(_WIN32)
#include <windows.h>
#else
#include <sys/time.h>
#include <unistd.h>
#endif

CAMLprim value bdd_monotonic_now(value unit)
{
#if defined(_WIN32)
  LARGE_INTEGER freq, count;
  QueryPerformanceFrequency(&freq);
  QueryPerformanceCounter(&count);
  return caml_copy_double((double)count.QuadPart / (double)freq.QuadPart);
#elif defined(CLOCK_MONOTONIC)
  struct timespec ts;
  if (clock_gettime(CLOCK_MONOTONIC, &ts) == 0)
    return caml_copy_double((double)ts.tv_sec + (double)ts.tv_nsec * 1e-9);
  /* fall through to the calendar clock on failure */
  {
    struct timeval tv;
    gettimeofday(&tv, NULL);
    return caml_copy_double((double)tv.tv_sec + (double)tv.tv_usec * 1e-6);
  }
#else
  struct timeval tv;
  gettimeofday(&tv, NULL);
  return caml_copy_double((double)tv.tv_sec + (double)tv.tv_usec * 1e-6);
#endif
}
