(* Reduced ordered BDDs with hash-consing, memoised operations, and
   dynamic variable reordering, over an unboxed int-packed node store.

   Representation.  A diagram handle [t] is an [int]: 0 is the constant
   false, 1 the constant true, and any index >= 2 names a slot in the
   manager's struct-of-arrays columns [n_var]/[n_lo]/[n_hi].  A node is
   therefore three adjacent-by-index array cells, not a boxed record:
   the OCaml GC never traverses the store, [mk] allocates nothing on
   the OCaml heap, and a cofactor read is one bounds-checked array
   load.  Free slots (after [gc] or a reordering reap) carry
   [n_var = -1] and are threaded into a free list through [n_lo].

   The unique table is open addressing, split per variable: each
   variable owns a power-of-two slot array probed linearly (-1 empty,
   -2 tombstone), grown geometrically at 3/4 load with a full rehash
   that also clears tombstones.  Splitting per variable is what keeps
   an adjacent-level exchange local to the two affected subtables.

   The five operation caches (ite / exists / forall / relprod /
   constrain) are direct-mapped int-packed arrays: one slot per hash,
   a probe is one multiply and 3-4 array reads, and an insert that
   lands on a live entry with a different key simply overwrites it
   (counted as an eviction).  This replaces the boxed scheme's
   tuple-keyed hash tables with whole-table reset eviction: results
   never change — caches only affect sharing of work — so a displaced
   entry merely forces recomputation.

   Invariants maintained by [mk]:
   - ordering: on every path from the root, variable *levels* strictly
     increase (the manager holds a mutable var <-> level bijection;
     with the default identity order, levels coincide with variable
     indices);
   - reduction: no node has [low == high], and no two distinct nodes
     of the same variable have the same (low, high) pair (per-variable
     unique subtables).

   Under these invariants structural identity is semantic equivalence,
   so [equal] is constant-time and operation caches are keyed directly
   by handles.

   Reordering works by adjacent-level swap: a node of the upper
   variable that depends on the lower one is rewritten *in place*
   (its [n_var]/[n_lo]/[n_hi] cells) to denote the same boolean
   function with the two variables exchanged, so external handles
   survive — only the two affected unique subtables are touched.  See
   the [Reorder] section below for the full invariant story.

   Garbage collection is mark-and-sweep over the columns with
   free-list reuse, NOT compaction: handles are immediate ints copied
   into arbitrary client structures, so they cannot be rewritten —
   exactly the contract the boxed store had (ids of surviving nodes
   are stable across [gc]).  Swept indices are recycled by later
   [mk]s; the operation caches are dropped at every sweep so a stale
   cached handle can never escape into a recycled slot. *)

type t = int (* 0 = false, 1 = true, >= 2 = index into the columns *)

(* Per-operation counters, updated in place on the hot path. *)
type opstat = {
  mutable calls : int;
  mutable hits : int;
  mutable misses : int;
}

let fresh_opstat () = { calls = 0; hits = 0; misses = 0 }

(* The time base for every duration and deadline in the package.  The
   monotonic clock cannot jump: an NTP step (or a sysadmin's date(1))
   moves [Unix.gettimeofday] arbitrarily far in either direction, which
   would spuriously breach — or silently extend — a wall-clock budget
   measured against it.  Deadlines are *relative* quantities, so they
   belong on CLOCK_MONOTONIC (the C stub falls back to the calendar
   clock only on platforms without one). *)
external now_monotonic : unit -> float = "bdd_monotonic_now"

(* Public (immutable) snapshots of the counters; declared before [man]
   so the resource-governance exception below can carry one. *)
type op_stats = { calls : int; hits : int; misses : int }

type stats = {
  ite : op_stats;
  exists : op_stats;
  forall : op_stats;
  relprod : op_stats;
  constrain : op_stats;
  live_nodes : int;
  peak_nodes : int;
  total_nodes : int;
  cache_evictions : int;
  gc_runs : int;
  gc_collected : int;
  reorders : int;
  reorder_ms : float;
  reorder_saved : int;
  cache_stores : int;
  unique_lookups : int;
  unique_probes : int;
  store_capacity : int;
  unique_capacity : int;
}

(* ------------------------------------------------------------------ *)
(* Resource governance: deadlines, node budgets, step budgets, and
   cooperative cancellation.

   A [limits] record is attached to a manager; the hot operation loops
   poll it every [poll_interval] cache probes (a countdown decrement
   per probe, one wall-clock read per interval), and the fixpoint /
   ring-descent layers charge their coarse-grained steps explicitly.
   The record is defined here, before [man], because the manager holds
   the attached instance; the public face is the [Limits] submodule
   below. *)

type limits_breach =
  | Deadline of { timeout : float; elapsed : float }
  | Node_budget of { budget : int; live : int }
  | Step_budget of { budget : int; steps : int }
  | Interrupted

type limits_progress = {
  steps : int;
  iterations : int;
  rings : int;
  witness_prefix : bool array list;
}

type limits = {
  started : float;            (* [now_monotonic] at creation *)
  timeout : float option;     (* requested duration, seconds *)
  deadline : float option;    (* absolute monotonic: started +. timeout *)
  node_budget : int option;   (* max live (unique-table) nodes *)
  step_budget : int option;   (* max fixpoint + ring-descent steps *)
  mutable l_steps : int;      (* budgeted steps consumed *)
  mutable l_iterations : int; (* fixpoint iterations completed *)
  mutable l_rings : int;      (* ring-descent segments completed *)
  mutable l_witness : bool array list;  (* best-so-far witness prefix *)
  cancelled : bool Atomic.t;
      (* cooperative-cancellation flag.  Atomic, not a plain mutable
         bool: cancellation is requested from outside the domain that
         owns the manager (a signal handler in the main domain, a
         coordinator cancelling worker domains), and a plain field
         written by one domain has no visibility guarantee in another.
         The flag may be shared between several bundles (one per worker
         spec) so a single store cancels them all. *)
}

(* Deterministic fault injection (public face: the [Fault] submodule).
   An armed fault names a site and a countdown; the matching hook
   decrements it and, at zero, disarms itself and raises.  One-shot by
   construction: a retry attempt after a recovery never re-trips the
   same injection.  Defined before [man] because the manager carries
   the armed fault. *)

type fault_site = Mk | Cache_probe | Gc | Step | Reorder

type fault = { f_site : fault_site; mutable f_remaining : int }

(* One variable's unique subtable: a power-of-two slot array of node
   indices probed linearly.  -1 marks an empty slot, -2 a tombstone
   left by a removal (reordering, gc rebuilds afresh instead).  The
   key of a stored node is its (n_lo, n_hi) pair, read back from the
   columns — the table itself holds only indices. *)
type sub = {
  mutable s_slots : int array;
  mutable s_count : int; (* live entries *)
  mutable s_tombs : int; (* tombstones *)
}

(* One direct-mapped operation cache: [c_stride] ints per entry (the
   key's 2 or 3 handles followed by the result), one entry per hash
   value.  An empty entry has key word -1 (valid handles are >= 0).
   The array doubles (up to the manager's cap) when enough stores have
   accumulated since the last resize, and [clear_caches] drops it back
   to the initial size — the packed analogue of [Hashtbl.reset]. *)
type cache = {
  c_stride : int;
  mutable c_data : int array;
  mutable c_mask : int; (* entries - 1, entries a power of two *)
  mutable c_stores : int; (* total stores (monotone) *)
  mutable c_over : int; (* stores that displaced a live entry *)
  mutable c_since : int; (* stores since the last resize/clear *)
}

type man = {
  (* --- the node store: struct-of-arrays columns --- *)
  mutable n_var : int array; (* variable, or -1 for a free slot *)
  mutable n_lo : int array;  (* else-child; free-list next when free *)
  mutable n_hi : int array;  (* then-child *)
  mutable n_cap : int;       (* column capacity (doubles on demand) *)
  mutable n_next : int;      (* allocation watermark (indices 0/1 reserved) *)
  mutable free_head : int;   (* head of the free list, or -1 *)
  mutable total_created : int; (* nodes ever allocated *)
  (* Unique tables, one per variable, keyed by (low, high).  Splitting
     the table per variable is what makes an adjacent-level swap touch
     only the two affected subtables. *)
  mutable subs : sub array;
  mutable nvars : int;         (* variables ever mentioned *)
  mutable var2lvl : int array; (* variable -> level, a permutation *)
  mutable lvl2var : int array; (* level -> variable, its inverse *)
  mutable pair_with : int array;
      (* grouped-sifting partner of each variable, or -1; pairs are
         kept level-adjacent by [Reorder.sift] *)
  mutable live : int; (* total nodes across the subtables *)
  mutable zombies : int list;
      (* slots detached from the unique table by a reordering reap but
         whose columns are kept readable: a client may still hold the
         handle (the boxed store kept such records alive through the
         OCaml GC).  The next [gc] releases the unmarked ones. *)
  ite_cache : cache;
  exists_cache : cache;
  forall_cache : cache;
  relprod_cache : cache;
  constrain_cache : cache;
  mutable cache_limit : int;
      (* requested per-cache entry bound; [max_int] means unbounded *)
  mutable cache_cap : int;
      (* realised per-cache capacity cap: the largest power of two
         within [cache_limit], or the hard cap when unbounded *)
  cache_entries0 : int; (* initial (and post-clear) per-cache entries *)
  mutable evictions : int;
  mutable unique_lookups : int; (* unique-table find-or-insert probes *)
  mutable unique_probes : int;  (* slots inspected across all lookups *)
  mutable peak_nodes : int;
  mutable gc_runs : int;
  mutable gc_collected : int;
  ite_stat : opstat;
  exists_stat : opstat;
  forall_stat : opstat;
  relprod_stat : opstat;
  constrain_stat : opstat;
  roots : (int, unit -> t list) Hashtbl.t;
  mutable next_root : int;
  mutable limits : limits option;
      (* the attached governance record, polled from the hot loops *)
  mutable poll_countdown : int;
      (* cache probes until the next full limits check *)
  mutable fault : fault option;
      (* armed fault injection, if any (chaos testing only) *)
  mutable faults_fired : int;
  (* --- dynamic reordering state --- *)
  mutable in_reorder : bool;   (* a swap/sift is running *)
  mutable reorder_pending : bool;
      (* [mk] crossed the auto threshold; serviced at checkpoints *)
  mutable auto_ok : bool;
      (* checkpoints may run a pending sift: true only inside regions
         whose live intermediates are all reachable from GC roots *)
  mutable reorder_threshold : int;  (* live nodes; [max_int] = auto off *)
  mutable reorder_threshold0 : int; (* initial threshold (doubling floor) *)
  mutable reorders : int;
  mutable reorder_ms : float;
  mutable reorder_saved : int;      (* nodes reclaimed by reordering *)
}

(* How many cache probes between full limit checks (wall-clock read +
   unique-table length).  The countdown decrement itself is the only
   per-probe cost, so this bounds both poll latency and overhead. *)
let poll_interval = 4096

let pow2_at_least n =
  let p = ref 1 in
  while !p < n do
    p := !p lsl 1
  done;
  !p

(* Largest power of two <= n, for n >= 1. *)
let pow2_at_most n =
  let p = ref 1 in
  while !p lsl 1 <= n do
    p := !p lsl 1
  done;
  !p

(* Per-cache entries never exceed this even unbounded: a direct-mapped
   cache past a quarter-million entries stops gaining hits and starts
   costing resident memory (each entry is 3-4 words forever). *)
let cache_hard_cap = 1 lsl 18

let cache_make stride entries =
  {
    c_stride = stride;
    c_data = Array.make (entries * stride) (-1);
    c_mask = entries - 1;
    c_stores = 0;
    c_over = 0;
    c_since = 0;
  }

let fresh_sub () = { s_slots = Array.make 16 (-1); s_count = 0; s_tombs = 0 }

let create ?(unique_size = 20_011) ?(cache_size = 20_011) ?cache_limit () =
  let climit = match cache_limit with Some n -> n | None -> max_int in
  let cache_cap =
    if climit = max_int then cache_hard_cap
    else max 1 (pow2_at_most (max 1 climit))
  in
  let entries0 =
    min (pow2_at_least (max 256 (min 4096 (max 1 (cache_size / 8))))) cache_cap
  in
  (* [unique_size] sizes the initial node-store columns (clamped to a
     sane power-of-two range); the per-variable subtables start small
     and grow geometrically as nodes actually land in them. *)
  let ucap = pow2_at_least (max 1024 (min (max unique_size 2) (1 lsl 24))) in
  {
    n_var = Array.make ucap (-1);
    n_lo = Array.make ucap 0;
    n_hi = Array.make ucap 0;
    n_cap = ucap;
    n_next = 2;
    free_head = -1;
    total_created = 0;
    subs = Array.init 64 (fun _ -> fresh_sub ());
    nvars = 0;
    var2lvl = Array.make 64 (-1);
    lvl2var = Array.make 64 (-1);
    pair_with = Array.make 64 (-1);
    live = 0;
    zombies = [];
    ite_cache = cache_make 4 entries0;
    exists_cache = cache_make 3 entries0;
    forall_cache = cache_make 3 entries0;
    relprod_cache = cache_make 4 entries0;
    constrain_cache = cache_make 3 entries0;
    cache_limit = climit;
    cache_cap;
    cache_entries0 = entries0;
    evictions = 0;
    unique_lookups = 0;
    unique_probes = 0;
    peak_nodes = 0;
    gc_runs = 0;
    gc_collected = 0;
    ite_stat = fresh_opstat ();
    exists_stat = fresh_opstat ();
    forall_stat = fresh_opstat ();
    relprod_stat = fresh_opstat ();
    constrain_stat = fresh_opstat ();
    roots = Hashtbl.create 16;
    next_root = 0;
    limits = None;
    poll_countdown = poll_interval;
    fault = None;
    faults_fired = 0;
    in_reorder = false;
    reorder_pending = false;
    auto_ok = false;
    reorder_threshold = max_int;
    reorder_threshold0 = max_int;
    reorders = 0;
    reorder_ms = 0.0;
    reorder_saved = 0;
  }

(* Grow the variable universe to include [v].  New variables enter at
   the bottom of the order (level = index), which extends any existing
   permutation consistently: levels [nvars..v] are necessarily free. *)
let ensure_var m v =
  if v >= m.nvars then begin
    let n = v + 1 in
    let cap = Array.length m.subs in
    if n > cap then begin
      let newcap = max n (2 * cap) in
      let st =
        Array.init newcap (fun i ->
            if i < cap then m.subs.(i) else fresh_sub ())
      in
      let grow a =
        let a' = Array.make newcap (-1) in
        Array.blit a 0 a' 0 m.nvars;
        a'
      in
      let v2l = grow m.var2lvl and l2v = grow m.lvl2var in
      let pw = grow m.pair_with in
      m.subs <- st;
      m.var2lvl <- v2l;
      m.lvl2var <- l2v;
      m.pair_with <- pw
    end;
    for i = m.nvars to n - 1 do
      m.var2lvl.(i) <- i;
      m.lvl2var.(i) <- i
    done;
    m.nvars <- n
  end

let set_cache_limit m limit =
  (match limit with
  | Some n when n <= 0 -> invalid_arg "Bdd.set_cache_limit: non-positive limit"
  | Some _ | None -> ());
  m.cache_limit <- (match limit with Some n -> n | None -> max_int);
  m.cache_cap <-
    (if m.cache_limit = max_int then cache_hard_cap
     else max 1 (pow2_at_most m.cache_limit));
  (* Shrink immediately: a newly installed bound must not leave an
     oversized array resident until the next insertion. *)
  let shrink c =
    if c.c_mask + 1 > m.cache_cap then begin
      c.c_data <- Array.make (m.cache_cap * c.c_stride) (-1);
      c.c_mask <- m.cache_cap - 1;
      c.c_since <- 0
    end
  in
  shrink m.ite_cache;
  shrink m.exists_cache;
  shrink m.forall_cache;
  shrink m.relprod_cache;
  shrink m.constrain_cache

let cache_limit m = if m.cache_limit = max_int then None else Some m.cache_limit

let count_nodes m = m.total_created
let live_nodes m = m.live

let snapshot_op (s : opstat) =
  { calls = s.calls; hits = s.hits; misses = s.misses }

let unique_capacity m =
  let acc = ref 0 in
  for v = 0 to m.nvars - 1 do
    acc := !acc + Array.length m.subs.(v).s_slots
  done;
  !acc

let stats m =
  {
    ite = snapshot_op m.ite_stat;
    exists = snapshot_op m.exists_stat;
    forall = snapshot_op m.forall_stat;
    relprod = snapshot_op m.relprod_stat;
    constrain = snapshot_op m.constrain_stat;
    live_nodes = live_nodes m;
    peak_nodes = m.peak_nodes;
    total_nodes = count_nodes m;
    cache_evictions = m.evictions;
    gc_runs = m.gc_runs;
    gc_collected = m.gc_collected;
    reorders = m.reorders;
    reorder_ms = m.reorder_ms;
    reorder_saved = m.reorder_saved;
    cache_stores =
      m.ite_cache.c_stores + m.exists_cache.c_stores
      + m.forall_cache.c_stores + m.relprod_cache.c_stores
      + m.constrain_cache.c_stores;
    unique_lookups = m.unique_lookups;
    unique_probes = m.unique_probes;
    store_capacity = m.n_cap;
    unique_capacity = unique_capacity m;
  }

(* ------------------------------------------------------------------ *)
(* Limit checking.  [limits_check_now] is the single breach point:
   every budget violation funnels through it, so [Limits_exhausted]
   always carries a fresh stats snapshot and the partial progress
   recorded so far. *)

type limits_info = {
  breach : limits_breach;
  stats : stats;
  progress : limits_progress;
}

exception Limits_exhausted of limits_info

let limits_progress_of (l : limits) =
  {
    steps = l.l_steps;
    iterations = l.l_iterations;
    rings = l.l_rings;
    witness_prefix = l.l_witness;
  }

let limits_breach m l breach =
  raise
    (Limits_exhausted
       { breach; stats = stats m; progress = limits_progress_of l })

let limits_check_now m (l : limits) =
  if Atomic.get l.cancelled then limits_breach m l Interrupted;
  (match l.node_budget with
  | Some budget ->
    let live = live_nodes m in
    if live > budget then limits_breach m l (Node_budget { budget; live })
  | None -> ());
  (match l.step_budget with
  | Some budget ->
    if l.l_steps > budget then
      limits_breach m l (Step_budget { budget; steps = l.l_steps })
  | None -> ());
  match l.deadline with
  | Some d ->
    let now = now_monotonic () in
    if now > d then
      limits_breach m l
        (Deadline
           {
             timeout = (match l.timeout with Some t -> t | None -> 0.0);
             elapsed = now -. l.started;
           })
  | None -> ()

(* The cooperative poll on the hot path: a countdown decrement per
   cache probe, a full check every [poll_interval] probes. *)
let poll m =
  m.poll_countdown <- m.poll_countdown - 1;
  if m.poll_countdown <= 0 then begin
    m.poll_countdown <- poll_interval;
    match m.limits with None -> () | Some l -> limits_check_now m l
  end

(* The fault hook on the hot sites.  Disarmed cost is one immediate
   field load and branch — unmeasurable next to the array probe each
   site performs anyway (bench E12 keeps it honest).  When the
   countdown reaches zero the fault disarms itself first, then raises
   [Out_of_memory]: the same exception a genuine allocation failure at
   that site would surface, so recovery code cannot tell injected
   pressure from real pressure. *)
let fault_tick m site =
  match m.fault with
  | None -> ()
  | Some f ->
    if f.f_site = site then begin
      f.f_remaining <- f.f_remaining - 1;
      if f.f_remaining <= 0 then begin
        m.fault <- None;
        m.faults_fired <- m.faults_fired + 1;
        raise Out_of_memory
      end
    end

(* ------------------------------------------------------------------ *)
(* Direct-mapped operation caches.  Lookups and insertions funnel
   through these helpers so hit and miss counts stay accurate, every
   cache obeys the capacity cap, and attached resource limits are
   polled cooperatively — the same funnel the boxed scheme had, one
   probe per lookup instead of a tuple allocation plus a hash-table
   walk.  Eviction is per-entry overwrite: a store landing on a live
   entry with a different key displaces it (counted in
   [cache_evictions]).  Correctness never depends on the caches, only
   sharing does, so a displaced entry merely forces recomputation. *)

let mix2 a b =
  let h = (a * 0x9e3779b1) lxor (b * 0x85ebca77) in
  h lxor (h lsr 16)

let mix3 a b c =
  let h = (a * 0x9e3779b1) lxor (b * 0x85ebca77) lxor (c * 0xc2b2ae3d) in
  h lxor (h lsr 16)

(* Double a cache (rehashing live entries; collisions keep the newer
   slot's claim — both entries are still correct, one just loses its
   sharing).  At the cap this degrades to resetting the growth
   counter, so the check stays O(1) per store. *)
let cache_grow m c =
  let entries = (c.c_mask + 1) * 2 in
  if entries <= m.cache_cap then begin
    let old = c.c_data and oldmask = c.c_mask and st = c.c_stride in
    let d = Array.make (entries * st) (-1) in
    c.c_data <- d;
    c.c_mask <- entries - 1;
    for i = 0 to oldmask do
      let b = i * st in
      if old.(b) >= 0 then begin
        let h =
          (if st = 3 then mix2 old.(b) old.(b + 1)
           else mix3 old.(b) old.(b + 1) old.(b + 2))
          land c.c_mask
        in
        Array.blit old b d (h * st) st
      end
    done
  end;
  c.c_since <- 0

let cache_find2 m (stat : opstat) c k1 k2 =
  fault_tick m Cache_probe;
  poll m;
  let b = (mix2 k1 k2 land c.c_mask) * 3 in
  let d = c.c_data in
  if d.(b) = k1 && d.(b + 1) = k2 then begin
    stat.hits <- stat.hits + 1;
    d.(b + 2)
  end
  else begin
    stat.misses <- stat.misses + 1;
    -1
  end

let cache_store2 m c k1 k2 r =
  let b = (mix2 k1 k2 land c.c_mask) * 3 in
  let d = c.c_data in
  if d.(b) >= 0 && not (d.(b) = k1 && d.(b + 1) = k2) then begin
    c.c_over <- c.c_over + 1;
    m.evictions <- m.evictions + 1
  end;
  d.(b) <- k1;
  d.(b + 1) <- k2;
  d.(b + 2) <- r;
  c.c_stores <- c.c_stores + 1;
  c.c_since <- c.c_since + 1;
  if c.c_since > 2 * (c.c_mask + 1) then cache_grow m c

let cache_find3 m (stat : opstat) c k1 k2 k3 =
  fault_tick m Cache_probe;
  poll m;
  let b = (mix3 k1 k2 k3 land c.c_mask) * 4 in
  let d = c.c_data in
  if d.(b) = k1 && d.(b + 1) = k2 && d.(b + 2) = k3 then begin
    stat.hits <- stat.hits + 1;
    d.(b + 3)
  end
  else begin
    stat.misses <- stat.misses + 1;
    -1
  end

let cache_store3 m c k1 k2 k3 r =
  let b = (mix3 k1 k2 k3 land c.c_mask) * 4 in
  let d = c.c_data in
  if d.(b) >= 0 && not (d.(b) = k1 && d.(b + 1) = k2 && d.(b + 2) = k3)
  then begin
    c.c_over <- c.c_over + 1;
    m.evictions <- m.evictions + 1
  end;
  d.(b) <- k1;
  d.(b + 1) <- k2;
  d.(b + 2) <- k3;
  d.(b + 3) <- r;
  c.c_stores <- c.c_stores + 1;
  c.c_since <- c.c_since + 1;
  if c.c_since > 2 * (c.c_mask + 1) then cache_grow m c

(* Drop a cache back to its initial size — the packed analogue of
   [Hashtbl.reset]: contents gone, resident memory returned. *)
let cache_reset m c =
  let entries = min m.cache_entries0 m.cache_cap in
  c.c_data <- Array.make (entries * c.c_stride) (-1);
  c.c_mask <- entries - 1;
  c.c_since <- 0

let clear_caches m =
  cache_reset m m.ite_cache;
  cache_reset m m.constrain_cache;
  cache_reset m m.exists_cache;
  cache_reset m m.forall_cache;
  cache_reset m m.relprod_cache

(* ------------------------------------------------------------------ *)
(* The node store: column allocation and the open-addressing unique
   subtables. *)

let grow_columns m =
  let cap = 2 * m.n_cap in
  let nv = Array.make cap (-1)
  and nl = Array.make cap 0
  and nh = Array.make cap 0 in
  Array.blit m.n_var 0 nv 0 m.n_cap;
  Array.blit m.n_lo 0 nl 0 m.n_cap;
  Array.blit m.n_hi 0 nh 0 m.n_cap;
  m.n_var <- nv;
  m.n_lo <- nl;
  m.n_hi <- nh;
  m.n_cap <- cap

let alloc_node m v lo hi =
  let n =
    if m.free_head >= 0 then begin
      let n = m.free_head in
      m.free_head <- m.n_lo.(n);
      n
    end
    else begin
      if m.n_next >= m.n_cap then grow_columns m;
      let n = m.n_next in
      m.n_next <- n + 1;
      n
    end
  in
  m.n_var.(n) <- v;
  m.n_lo.(n) <- lo;
  m.n_hi.(n) <- hi;
  m.total_created <- m.total_created + 1;
  m.live <- m.live + 1;
  if m.live > m.peak_nodes then m.peak_nodes <- m.live;
  n

let release_slot m n =
  m.n_var.(n) <- -1;
  m.n_lo.(n) <- m.free_head;
  m.n_hi.(n) <- -1;
  m.free_head <- n

let free_node m n =
  release_slot m n;
  m.live <- m.live - 1

let hash_uid lo hi =
  let h = (lo * 0x9e3779b1) lxor (hi * 0x61c88647) in
  h lxor (h lsr 16)

(* Rehash a subtable into a fresh slot array sized for its live count;
   tombstones evaporate.  Also the growth path: load (live + tombs) is
   kept under 3/4 so probe chains stay short and terminate. *)
let sub_grow m s =
  let newcap = pow2_at_least (max 16 (2 * (s.s_count + 1))) in
  let slots = Array.make newcap (-1) in
  let mask = newcap - 1 in
  Array.iter
    (fun e ->
      if e >= 2 then begin
        let j = ref (hash_uid m.n_lo.(e) m.n_hi.(e) land mask) in
        while slots.(!j) <> -1 do
          j := (!j + 1) land mask
        done;
        slots.(!j) <- e
      end)
    s.s_slots;
  s.s_slots <- slots;
  s.s_tombs <- 0

(* Find the node with key (lo, hi), or -1. *)
let sub_find m s lo hi =
  let slots = s.s_slots in
  let mask = Array.length slots - 1 in
  let j = ref (hash_uid lo hi land mask) in
  let r = ref (-1) and looking = ref true in
  while !looking do
    let e = slots.(!j) in
    if e = -1 then looking := false
    else begin
      if e >= 2 && m.n_lo.(e) = lo && m.n_hi.(e) = hi then begin
        r := e;
        looking := false
      end
      else j := (!j + 1) land mask
    end
  done;
  !r

(* Remove node [e] (found by its current key); leaves a tombstone. *)
let sub_remove m s e =
  let slots = s.s_slots in
  let mask = Array.length slots - 1 in
  let j = ref (hash_uid m.n_lo.(e) m.n_hi.(e) land mask) in
  let looking = ref true in
  while !looking do
    let e' = slots.(!j) in
    if e' = e then begin
      slots.(!j) <- -2;
      s.s_count <- s.s_count - 1;
      s.s_tombs <- s.s_tombs + 1;
      looking := false
    end
    else if e' = -1 then looking := false
    else j := (!j + 1) land mask
  done

(* Insert node [e] under its current key, which must be absent (the
   reordering paths guarantee it; [mk] inlines its own probe). *)
let sub_insert m s e =
  assert (sub_find m s m.n_lo.(e) m.n_hi.(e) = -1);
  let slots = s.s_slots in
  let mask = Array.length slots - 1 in
  let j = ref (hash_uid m.n_lo.(e) m.n_hi.(e) land mask) in
  let looking = ref true in
  while !looking do
    match slots.(!j) with
    | -1 ->
      slots.(!j) <- e;
      looking := false
    | -2 ->
      slots.(!j) <- e;
      s.s_tombs <- s.s_tombs - 1;
      looking := false
    | _ -> j := (!j + 1) land mask
  done;
  s.s_count <- s.s_count + 1;
  if 4 * (s.s_count + s.s_tombs + 1) > 3 * (mask + 1) then sub_grow m s

(* ------------------------------------------------------------------ *)
(* Handles and structure. *)

let zero _ = 0
let one _ = 1
let id (f : t) : int = f
let is_zero f = f = 0
let is_one f = f = 1
let equal (a : t) (b : t) = a = b
let compare (a : t) (b : t) = Stdlib.compare a b
let hash (f : t) = f

let topvar m f =
  if f >= 2 then m.n_var.(f) else invalid_arg "Bdd.topvar: constant"

let low m f = if f >= 2 then m.n_lo.(f) else invalid_arg "Bdd.low: constant"
let high m f = if f >= 2 then m.n_hi.(f) else invalid_arg "Bdd.high: constant"

(* Root level, treating constants as deeper than everything.  With the
   default identity order this is the root variable index, so every
   level comparison below reproduces the historic var comparison
   bit-for-bit. *)
let lvl m f = if f < 2 then max_int else m.var2lvl.(m.n_var.(f))

(* The only node constructor: reduces and hash-conses.  The probe
   remembers the first tombstone so removals (reordering) do not
   lengthen chains forever. *)
let mk m v lo hi =
  fault_tick m Mk;
  if lo = hi then lo
  else begin
    ensure_var m v;
    let s = m.subs.(v) in
    let slots = s.s_slots in
    let mask = Array.length slots - 1 in
    let j = ref (hash_uid lo hi land mask) in
    let tomb = ref (-1) and found = ref (-1) in
    let probes = ref 1 and looking = ref true in
    while !looking do
      let e = slots.(!j) in
      if e = -1 then looking := false
      else if e = -2 then begin
        if !tomb < 0 then tomb := !j;
        j := (!j + 1) land mask;
        incr probes
      end
      else if m.n_lo.(e) = lo && m.n_hi.(e) = hi then begin
        found := e;
        looking := false
      end
      else begin
        j := (!j + 1) land mask;
        incr probes
      end
    done;
    m.unique_lookups <- m.unique_lookups + 1;
    m.unique_probes <- m.unique_probes + !probes;
    if !found >= 0 then !found
    else begin
      let n = alloc_node m v lo hi in
      if !tomb >= 0 then begin
        slots.(!tomb) <- n;
        s.s_tombs <- s.s_tombs - 1
      end
      else slots.(!j) <- n;
      s.s_count <- s.s_count + 1;
      if 4 * (s.s_count + s.s_tombs + 1) > 3 * (mask + 1) then sub_grow m s;
      (* Auto-reorder trigger: note the threshold crossing; the sift
         itself runs only at an explicit checkpoint (a safe point where
         every live intermediate is root-reachable), never here in the
         middle of an operation's recursion. *)
      if m.live > m.reorder_threshold && not m.in_reorder then
        m.reorder_pending <- true;
      n
    end
  end

let var m v =
  if v < 0 then invalid_arg "Bdd.var: negative variable";
  mk m v 0 1

let nvar m v =
  if v < 0 then invalid_arg "Bdd.nvar: negative variable";
  mk m v 1 0

(* Cofactors with respect to a variable at or above the root: two
   branch tests and an array load each, no allocation. *)
let cof0 m f v = if f >= 2 && m.n_var.(f) = v then m.n_lo.(f) else f
let cof1 m f v = if f >= 2 && m.n_var.(f) = v then m.n_hi.(f) else f

let rec ite m f g h =
  m.ite_stat.calls <- m.ite_stat.calls + 1;
  if f = 1 then g
  else if f = 0 then h
  else if g = h then g
  else if g = 1 && h = 0 then f
  else begin
    let r = cache_find3 m m.ite_stat m.ite_cache f g h in
    if r >= 0 then r
    else begin
      let l = min (lvl m f) (min (lvl m g) (lvl m h)) in
      let v = m.lvl2var.(l) in
      let f0 = cof0 m f v
      and f1 = cof1 m f v
      and g0 = cof0 m g v
      and g1 = cof1 m g v
      and h0 = cof0 m h v
      and h1 = cof1 m h v in
      let lo = ite m f0 g0 h0 and hi = ite m f1 g1 h1 in
      let r = mk m v lo hi in
      cache_store3 m m.ite_cache f g h r;
      r
    end
  end

let not_ m f = ite m f 0 1
let and_ m f g = ite m f g 0
let or_ m f g = ite m f 1 g
let xor m f g = ite m f (not_ m g) g
let imp m f g = ite m f g 1
let iff m f g = ite m f g (not_ m g)
let diff m f g = ite m f (not_ m g) 0
let conj m fs = List.fold_left (and_ m) 1 fs
let disj m fs = List.fold_left (or_ m) 0 fs
let subset m f g = is_zero (diff m f g)

let restrict m f v b =
  if v < 0 then invalid_arg "Bdd.restrict: negative variable";
  ensure_var m v;
  let vl = m.var2lvl.(v) in
  let rec go f =
    if f < 2 then f
    else
      let fv = m.n_var.(f) in
      if m.var2lvl.(fv) > vl then f
      else if fv = v then if b then m.n_hi.(f) else m.n_lo.(f)
      else mk m fv (go m.n_lo.(f)) (go m.n_hi.(f))
  in
  go f

let cube m vs =
  let sorted = List.sort_uniq Stdlib.compare vs in
  List.iter
    (fun v ->
      if v < 0 then invalid_arg "Bdd.cube: negative variable";
      ensure_var m v)
    sorted;
  (* Build bottom-up in *level* order, deepest variable innermost. *)
  let by_level =
    List.stable_sort
      (fun a b -> Stdlib.compare m.var2lvl.(a) m.var2lvl.(b))
      sorted
  in
  List.fold_right (fun v acc -> mk m v 0 acc) by_level 1

(* Skip cube variables above level [l] (they do not occur in the
   operand, so quantifying them is a no-op for that branch). *)
let rec cube_from m c l =
  if c >= 2 && m.var2lvl.(m.n_var.(c)) < l then cube_from m m.n_hi.(c) l
  else c

let rec exists m c f =
  m.exists_stat.calls <- m.exists_stat.calls + 1;
  if f < 2 then f
  else if c < 2 then f
  else begin
    let fv = m.n_var.(f) in
    let c = cube_from m c m.var2lvl.(fv) in
    if c < 2 then f
    else begin
      let r = cache_find2 m m.exists_stat m.exists_cache f c in
      if r >= 0 then r
      else begin
        let r =
          if fv = m.n_var.(c) then
            let ch = m.n_hi.(c) in
            or_ m (exists m ch m.n_lo.(f)) (exists m ch m.n_hi.(f))
          else mk m fv (exists m c m.n_lo.(f)) (exists m c m.n_hi.(f))
        in
        cache_store2 m m.exists_cache f c r;
        r
      end
    end
  end

let rec forall m c f =
  m.forall_stat.calls <- m.forall_stat.calls + 1;
  if f < 2 then f
  else if c < 2 then f
  else begin
    let fv = m.n_var.(f) in
    let c = cube_from m c m.var2lvl.(fv) in
    if c < 2 then f
    else begin
      let r = cache_find2 m m.forall_stat m.forall_cache f c in
      if r >= 0 then r
      else begin
        let r =
          if fv = m.n_var.(c) then
            let ch = m.n_hi.(c) in
            and_ m (forall m ch m.n_lo.(f)) (forall m ch m.n_hi.(f))
          else mk m fv (forall m c m.n_lo.(f)) (forall m c m.n_hi.(f))
        in
        cache_store2 m m.forall_cache f c r;
        r
      end
    end
  end

(* Relational product: exists c (f /\ g) in a single recursion, the
   workhorse of image computation. *)
let rec and_exists m c f g =
  m.relprod_stat.calls <- m.relprod_stat.calls + 1;
  if f = 0 || g = 0 then 0
  else if f = 1 && g = 1 then 1
  else if c < 2 then and_ m f g
  else begin
    let l = min (lvl m f) (lvl m g) in
    let v = m.lvl2var.(l) in
    let c = cube_from m c l in
    if c < 2 then and_ m f g
    else begin
      (* Normalise the cache key: /\ is commutative. *)
      let i, j = if f <= g then (f, g) else (g, f) in
      let r = cache_find3 m m.relprod_stat m.relprod_cache i j c in
      if r >= 0 then r
      else begin
        let f0 = cof0 m f v
        and f1 = cof1 m f v
        and g0 = cof0 m g v
        and g1 = cof1 m g v in
        let r =
          if m.n_var.(c) = v then
            let ch = m.n_hi.(c) in
            or_ m (and_exists m ch f0 g0) (and_exists m ch f1 g1)
          else mk m v (and_exists m c f0 g0) (and_exists m c f1 g1)
        in
        cache_store3 m m.relprod_cache i j c r;
        r
      end
    end
  end

(* Generalized cofactor (Coudert-Madre "constrain"): a function that
   agrees with [f] on [c] and may take any value outside it, chosen so
   the result is often much smaller than [f].  Key property:
   [c /\ constrain f c = c /\ f]. *)
let rec constrain m f c =
  m.constrain_stat.calls <- m.constrain_stat.calls + 1;
  if c = 0 then invalid_arg "Bdd.constrain: care set is empty"
  else if c = 1 then f
  else if f < 2 then f
  else if f = c then 1
  else begin
    let r = cache_find2 m m.constrain_stat m.constrain_cache f c in
    if r >= 0 then r
    else begin
      let l = min (lvl m f) (lvl m c) in
      let v = m.lvl2var.(l) in
      let f0 = cof0 m f v
      and f1 = cof1 m f v
      and c0 = cof0 m c v
      and c1 = cof1 m c v in
      let r =
        if c1 = 0 then constrain m f0 c0
        else if c0 = 0 then constrain m f1 c1
        else mk m v (constrain m f0 c0) (constrain m f1 c1)
      in
      cache_store2 m m.constrain_cache f c r;
      r
    end
  end

let rename m f perm =
  (* [perm] must be injective on the support: two source variables
     mapped to one target would silently conflate their cofactors and
     produce a wrong diagram, so detect it up front (one O(size f)
     sweep, dominated by the rebuild below). *)
  let seen = Hashtbl.create 64 in
  let targets = Hashtbl.create 16 in
  let rec check f =
    if f >= 2 && not (Hashtbl.mem seen f) then begin
      Hashtbl.add seen f ();
      let v = m.n_var.(f) in
      let v' = perm v in
      if v' < 0 then invalid_arg "Bdd.rename: negative target variable";
      (match Hashtbl.find_opt targets v' with
      | Some src when src <> v ->
        invalid_arg "Bdd.rename: permutation not injective on support"
      | Some _ -> ()
      | None -> Hashtbl.add targets v' v);
      check m.n_lo.(f);
      check m.n_hi.(f)
    end
  in
  check f;
  (* Rebuild bottom-up through ITE so that non-monotone permutations
     (in the *order* sense: the source walk needs no relation to the
     manager's current levels) are handled correctly; memoised per
     call. *)
  let memo = Hashtbl.create 1024 in
  let rec go f =
    if f < 2 then f
    else
      match Hashtbl.find_opt memo f with
      | Some r -> r
      | None ->
        let r = ite m (var m (perm m.n_var.(f))) (go m.n_hi.(f)) (go m.n_lo.(f)) in
        Hashtbl.add memo f r;
        r
  in
  go f

let support m f =
  let seen = Hashtbl.create 64 in
  let vars = Hashtbl.create 64 in
  let rec go f =
    if f >= 2 && not (Hashtbl.mem seen f) then begin
      Hashtbl.add seen f ();
      Hashtbl.replace vars m.n_var.(f) ();
      go m.n_lo.(f);
      go m.n_hi.(f)
    end
  in
  go f;
  Hashtbl.fold (fun v () acc -> v :: acc) vars []
  |> List.sort Stdlib.compare

let size m f =
  let seen = Hashtbl.create 64 in
  let rec go f =
    if f >= 2 && not (Hashtbl.mem seen f) then begin
      Hashtbl.add seen f ();
      go m.n_lo.(f);
      go m.n_hi.(f)
    end
  in
  go f;
  Hashtbl.length seen

let rec eval m f env =
  if f = 0 then false
  else if f = 1 then true
  else if env m.n_var.(f) then eval m m.n_hi.(f) env
  else eval m m.n_lo.(f) env

let sat_count m f n =
  if List.exists (fun v -> v >= n) (support m f) then
    invalid_arg "Bdd.sat_count: support exceeds variable universe";
  if n > m.nvars then ensure_var m (n - 1);
  (* Weighted count over the n-variable universe, order-aware: crossing
     a gap of k universe variables (counted by level) multiplies by 2^k.
     [rank.(l)] counts universe variables at levels strictly below l;
     with the identity order rank.(l) = min l n, which reproduces the
     historic var-index arithmetic exactly. *)
  let nl = m.nvars in
  let rank = Array.make (nl + 1) 0 in
  for v = 0 to min n m.nvars - 1 do
    rank.(m.var2lvl.(v) + 1) <- rank.(m.var2lvl.(v) + 1) + 1
  done;
  for l = 1 to nl do
    rank.(l) <- rank.(l) + rank.(l - 1)
  done;
  let rank_of f = if f < 2 then n else rank.(m.var2lvl.(m.n_var.(f))) in
  let memo = Hashtbl.create 256 in
  let rec go f =
    if f = 0 then 0.0
    else if f = 1 then 1.0
    else
      match Hashtbl.find_opt memo f with
      | Some c -> c
      | None ->
        let here = rank.(m.var2lvl.(m.n_var.(f))) in
        let weight branch =
          let sub = go branch in
          let gap = rank_of branch - here - 1 in
          sub *. Float.pow 2.0 (float_of_int gap)
        in
        let c = weight m.n_lo.(f) +. weight m.n_hi.(f) in
        Hashtbl.add memo f c;
        c
  in
  go f *. Float.pow 2.0 (float_of_int (rank_of f))

let any_sat m f =
  let rec go acc f =
    if f = 0 then raise Not_found
    else if f = 1 then acc
    else
      let lo = m.n_lo.(f) in
      if lo = 0 then go ((m.n_var.(f), true) :: acc) m.n_hi.(f)
      else go ((m.n_var.(f), false) :: acc) lo
  in
  (* The diagram walk visits variables in level order; return the cube
     sorted by variable index so callers see an order-independent
     result (identical to the historic one under the identity order). *)
  go [] f |> List.sort (fun (a, _) (b, _) -> Stdlib.compare a b)

let any_sat_total m f ~vars =
  let partial = any_sat m f in
  let tbl = Hashtbl.create (2 * List.length partial) in
  List.iter (fun (v, b) -> Hashtbl.replace tbl v b) partial;
  let mentioned = Hashtbl.create 16 in
  let assignment =
    List.map
      (fun v ->
        Hashtbl.replace mentioned v ();
        (v, match Hashtbl.find_opt tbl v with Some b -> b | None -> false))
      (List.sort_uniq Stdlib.compare vars)
  in
  List.iter
    (fun (v, _) ->
      if not (Hashtbl.mem mentioned v) then
        invalid_arg "Bdd.any_sat_total: support not contained in vars")
    partial;
  assignment

let fold_sat m f vars ~init ~f:k =
  let vars_a = Array.of_list vars in
  let nv = Array.length vars_a in
  Array.iter
    (fun v ->
      if v < 0 then invalid_arg "Bdd.fold_sat: negative variable";
      ensure_var m v)
    vars_a;
  let pos = Hashtbl.create (2 * nv) in
  Array.iteri (fun i v -> Hashtbl.replace pos v i) vars_a;
  (* Walk the given variables in *level* order (the diagram's own walk
     order); [order.(j)] is the position, in the caller's list, of the
     j-th variable by level.  Under the identity order this enumerates
     assignments exactly as the historic index-order walk did. *)
  let order = Array.init nv (fun i -> i) in
  let order =
    Array.of_list
      (List.stable_sort
         (fun i j ->
           Stdlib.compare m.var2lvl.(vars_a.(i)) m.var2lvl.(vars_a.(j)))
         (Array.to_list order))
  in
  let assign = Array.make nv false in
  let rec go acc j f =
    if f = 0 then acc
    else if j = nv then if f = 1 then k acc assign else acc
    else begin
      let i = order.(j) in
      let v = vars_a.(i) in
      let f0 = cof0 m f v and f1 = cof1 m f v in
      assign.(i) <- false;
      let acc = go acc (j + 1) f0 in
      assign.(i) <- true;
      let acc = go acc (j + 1) f1 in
      assign.(i) <- false;
      acc
    end
  in
  List.iter
    (fun v ->
      if not (Hashtbl.mem pos v) then
        invalid_arg "Bdd.fold_sat: support not contained in vars")
    (support m f);
  go init 0 f

(* Cross-manager copy, order-independent.  The fast path copies node
   by node through [mk]: valid whenever the destination order agrees
   with the source structure (every parent sits above both children in
   [dst]'s order), which is checked per node — one array read per
   edge.  The copy is then [dst]'s canonical diagram for the same
   function (copying is injective on structure, so reduction is
   preserved).  When the orders disagree the copy falls back to a
   memoised bottom-up ITE rebuild keyed by source var *ids*, which
   re-canonicalises in [dst]'s order — this is what lets parallel
   workers hold different orders than the coordinator.  Only the
   immutable-for-the-duration columns of [src] are read, never its
   tables or caches, so transfers may run from another domain (the
   source manager must be quiescent: no operations, no gc, and no
   reordering while a transfer reads it). *)
exception Transfer_order

let transfer ~src ~dst f =
  let memo : (int, t) Hashtbl.t = Hashtbl.create 1024 in
  let structural () =
    let rec go f =
      if f < 2 then f
      else
        match Hashtbl.find_opt memo f with
        | Some r -> r
        | None ->
          let v = src.n_var.(f) in
          let lo = go src.n_lo.(f) in
          let hi = go src.n_hi.(f) in
          ensure_var dst v;
          let lp = dst.var2lvl.(v) in
          if lp >= lvl dst lo || lp >= lvl dst hi then raise Transfer_order;
          let r = mk dst v lo hi in
          Hashtbl.add memo f r;
          r
    in
    go f
  in
  match structural () with
  | r -> r
  | exception Transfer_order ->
    Hashtbl.reset memo;
    let rec go f =
      if f < 2 then f
      else
        match Hashtbl.find_opt memo f with
        | Some r -> r
        | None ->
          let r =
            ite dst (var dst src.n_var.(f)) (go src.n_hi.(f))
              (go src.n_lo.(f))
          in
          Hashtbl.add memo f r;
          r
    in
    go f

(* ------------------------------------------------------------------ *)
(* Statistics.                                                         *)

let cache_hits s =
  s.ite.hits + s.exists.hits + s.forall.hits + s.relprod.hits
  + s.constrain.hits

let cache_misses s =
  s.ite.misses + s.exists.misses + s.forall.misses + s.relprod.misses
  + s.constrain.misses

(* Pointwise sum of two snapshots, for aggregating the managers of a
   parallel run into one report.  Summing [peak_nodes] across managers
   that were live at the same time gives an upper bound on the
   simultaneous footprint, which is the number a memory budget cares
   about; capacities sum the same way. *)
let merge_stats a b =
  let op (x : op_stats) (y : op_stats) =
    { calls = x.calls + y.calls;
      hits = x.hits + y.hits;
      misses = x.misses + y.misses }
  in
  {
    ite = op a.ite b.ite;
    exists = op a.exists b.exists;
    forall = op a.forall b.forall;
    relprod = op a.relprod b.relprod;
    constrain = op a.constrain b.constrain;
    live_nodes = a.live_nodes + b.live_nodes;
    peak_nodes = a.peak_nodes + b.peak_nodes;
    total_nodes = a.total_nodes + b.total_nodes;
    cache_evictions = a.cache_evictions + b.cache_evictions;
    gc_runs = a.gc_runs + b.gc_runs;
    gc_collected = a.gc_collected + b.gc_collected;
    reorders = a.reorders + b.reorders;
    reorder_ms = a.reorder_ms +. b.reorder_ms;
    reorder_saved = a.reorder_saved + b.reorder_saved;
    cache_stores = a.cache_stores + b.cache_stores;
    unique_lookups = a.unique_lookups + b.unique_lookups;
    unique_probes = a.unique_probes + b.unique_probes;
    store_capacity = a.store_capacity + b.store_capacity;
    unique_capacity = a.unique_capacity + b.unique_capacity;
  }

(* The per-request counterpart of [merge_stats]: attribute the work of
   one governed region of a long-lived (warm) manager by subtracting a
   snapshot taken at region entry.  Monotone counters subtract;
   [live_nodes], [peak_nodes] and the capacity readings are
   instantaneous, so the later snapshot's values are kept (pair with
   [reset_peak] when the region's own peak is wanted). *)
let diff_stats after before =
  let op (x : op_stats) (y : op_stats) =
    { calls = x.calls - y.calls;
      hits = x.hits - y.hits;
      misses = x.misses - y.misses }
  in
  {
    ite = op after.ite before.ite;
    exists = op after.exists before.exists;
    forall = op after.forall before.forall;
    relprod = op after.relprod before.relprod;
    constrain = op after.constrain before.constrain;
    live_nodes = after.live_nodes;
    peak_nodes = after.peak_nodes;
    total_nodes = after.total_nodes - before.total_nodes;
    cache_evictions = after.cache_evictions - before.cache_evictions;
    gc_runs = after.gc_runs - before.gc_runs;
    gc_collected = after.gc_collected - before.gc_collected;
    reorders = after.reorders - before.reorders;
    reorder_ms = after.reorder_ms -. before.reorder_ms;
    reorder_saved = after.reorder_saved - before.reorder_saved;
    cache_stores = after.cache_stores - before.cache_stores;
    unique_lookups = after.unique_lookups - before.unique_lookups;
    unique_probes = after.unique_probes - before.unique_probes;
    store_capacity = after.store_capacity;
    unique_capacity = after.unique_capacity;
  }

let reset_peak m = m.peak_nodes <- m.live

let reset_stats m =
  let reset (s : opstat) =
    s.calls <- 0;
    s.hits <- 0;
    s.misses <- 0
  in
  reset m.ite_stat;
  reset m.exists_stat;
  reset m.forall_stat;
  reset m.relprod_stat;
  reset m.constrain_stat;
  let rcache c =
    c.c_stores <- 0;
    c.c_over <- 0
  in
  rcache m.ite_cache;
  rcache m.exists_cache;
  rcache m.forall_cache;
  rcache m.relprod_cache;
  rcache m.constrain_cache;
  m.evictions <- 0;
  m.unique_lookups <- 0;
  m.unique_probes <- 0;
  m.gc_runs <- 0;
  m.gc_collected <- 0;
  m.peak_nodes <- live_nodes m;
  m.reorders <- 0;
  m.reorder_ms <- 0.0;
  m.reorder_saved <- 0

let pp_stats ppf s =
  let op name (o : op_stats) =
    Format.fprintf ppf "  %-10s %10d calls %10d hits %10d misses@," name
      o.calls o.hits o.misses
  in
  Format.fprintf ppf "@[<v>BDD manager: %d live nodes (peak %d, %d allocated)@,"
    s.live_nodes s.peak_nodes s.total_nodes;
  op "ite" s.ite;
  op "exists" s.exists;
  op "forall" s.forall;
  op "relprod" s.relprod;
  op "constrain" s.constrain;
  Format.fprintf ppf
    "  cache hits %d  misses %d  evictions %d@,  gc runs %d (collected %d nodes)"
    (cache_hits s) (cache_misses s) s.cache_evictions s.gc_runs s.gc_collected;
  Format.fprintf ppf
    "@,  unique table load %.2f (%d/%d slots)  mean probe %.2f  cache stores %d"
    (float_of_int s.live_nodes
    /. float_of_int (max 1 s.unique_capacity))
    s.live_nodes s.unique_capacity
    (float_of_int s.unique_probes /. float_of_int (max 1 s.unique_lookups))
    s.cache_stores;
  (* Printed only when reordering actually ran, so a --reorder none run
     reports byte-identically to managers that predate reordering. *)
  if s.reorders > 0 then
    Format.fprintf ppf "@,  reorders %d (saved %d nodes, %.1f ms)" s.reorders
      s.reorder_saved s.reorder_ms;
  Format.fprintf ppf "@]"

(* ------------------------------------------------------------------ *)
(* Explicit roots and mark-and-sweep garbage collection.               *)

type root = int

let add_root m f =
  let r = m.next_root in
  m.next_root <- r + 1;
  Hashtbl.replace m.roots r f;
  r

let remove_root m r = Hashtbl.remove m.roots r

let with_root m f k =
  let r = add_root m f in
  Fun.protect ~finally:(fun () -> remove_root m r) k

let iter_nodes m f =
  for v = 0 to m.nvars - 1 do
    Array.iter (fun e -> if e >= 2 then f e) m.subs.(v).s_slots
  done

(* Mark from the registered roots, rebuild every subtable with only
   the survivors (sized 2x so the next growth is a while away), and
   thread the swept indices onto the free list.  Handles of survivors
   are untouched — sweep, not compaction: handles are immediate ints
   held in arbitrary client structures, so they cannot be rewritten.
   Mark recursion depth is bounded by the number of levels (paths
   visit strictly increasing levels). *)
let gc m =
  fault_tick m Gc;
  let marks = Bytes.make m.n_next '\000' in
  let rec mark f =
    if f >= 2 && Bytes.get marks f = '\000' then begin
      Bytes.set marks f '\001';
      mark m.n_lo.(f);
      mark m.n_hi.(f)
    end
  in
  Hashtbl.iter (fun _ provider -> List.iter mark (provider ())) m.roots;
  let before = m.live in
  for v = 0 to m.nvars - 1 do
    let s = m.subs.(v) in
    if s.s_count > 0 then begin
      let old = s.s_slots in
      let surv = ref 0 in
      Array.iter
        (fun e -> if e >= 2 && Bytes.get marks e <> '\000' then incr surv)
        old;
      let cap = pow2_at_least (max 16 (2 * (!surv + 1))) in
      let slots = Array.make cap (-1) in
      let mask = cap - 1 in
      Array.iter
        (fun e ->
          if e >= 2 then begin
            if Bytes.get marks e <> '\000' then begin
              let j = ref (hash_uid m.n_lo.(e) m.n_hi.(e) land mask) in
              while slots.(!j) <> -1 do
                j := (!j + 1) land mask
              done;
              slots.(!j) <- e
            end
            else free_node m e
          end)
        old;
      s.s_slots <- slots;
      s.s_count <- !surv;
      s.s_tombs <- 0
    end
    else if s.s_tombs > 0 then begin
      Array.fill s.s_slots 0 (Array.length s.s_slots) (-1);
      s.s_tombs <- 0
    end
  done;
  (* Zombie slots (detached from the table by a reordering reap but
     kept readable for client-held handles): release the ones no root
     marks.  Their live count was already decremented at detach time,
     so this frees columns only. *)
  m.zombies <-
    List.filter
      (fun z ->
        if m.n_var.(z) < 0 then false
        else if Bytes.get marks z = '\000' then begin
          release_slot m z;
          false
        end
        else true)
      m.zombies;
  (* The operation caches may hold handles of nodes just swept (whose
     indices a later [mk] will recycle); returning one would break
     canonicity, so they must go too. *)
  clear_caches m;
  let collected = before - m.live in
  m.gc_runs <- m.gc_runs + 1;
  m.gc_collected <- m.gc_collected + collected;
  collected

(* ------------------------------------------------------------------ *)
(* Dynamic variable reordering (Rudell sifting).

   The primitive is the adjacent-level swap.  Let x be the variable at
   level l and y at level l+1.  Every x-node n = (x, f0, f1) with at
   least one child rooted at y is rewritten in place to

       n := (y, mk(x, f00, f10), mk(x, f01, f11))

   where fij is the y=j cofactor of fi — the same boolean function
   with the two levels exchanged.  The rewrite mutates n's column
   cells, so n's index (and every external [t] handle to it) survives;
   only subtable x (n's old entry leaves) and subtable y (its new
   entry arrives) change.  x-nodes not depending on y, and all other
   levels, are untouched.  No unique-table collisions can occur: a
   collision would exhibit two distinct nodes for one function
   *before* the swap, contradicting canonicity.

   Children orphaned by rewrites (the old f0/f1 and, recursively,
   their descendants) are reclaimed by local reference counting so
   the sifting size metric is exact.  Parent counts live in a scratch
   int array indexed by node ([ensure_parents] re-syncs it after
   column growth); protection is a byte per node fixed at sweep start.
   A node that had no in-table parent when the reorder started (a
   client-held result top, or garbage we must not touch because
   clients may hold it) and every root-provider top is never
   reclaimed; everything else dies when its last in-table parent
   drops it.  Reclaimed indices go onto the free list and may be
   recycled by [reorder_mk] within the same sweep — the recycling
   path resets the recycled index's parent count and protection bit,
   so no stale state survives.  This gives reordering the same
   contract as [gc]: diagrams whose roots are registered (or simply
   held as handles) survive with identities and meaning intact;
   resurrecting an *interior* node of an unrooted diagram afterwards
   is unsound.

   The operation caches are structurally still correct after a swap
   (every node keeps its function) but may reference reclaimed
   indices, so they are flushed when the reorder finishes — also on
   an abort: [Limits] is polled between block exchanges, and each
   swap is atomic, so a deadline abort mid-sift leaves a consistent
   manager with whatever order the sift had reached. *)

let ensure_parents m pr =
  if Array.length !pr < m.n_cap then begin
    let a = Array.make m.n_cap 0 in
    Array.blit !pr 0 a 0 (Array.length !pr);
    pr := a
  end

let protected_ protect n = n < Bytes.length protect && Bytes.get protect n <> '\000'

let reorder_mk m pr protect v lo hi =
  if lo = hi then lo
  else begin
    let s = m.subs.(v) in
    let e = sub_find m s lo hi in
    if e >= 0 then e
    else begin
      let n = alloc_node m v lo hi in
      ensure_parents m pr;
      (* A recycled index may carry the reaped node's count/protection;
         this node is brand new, so reset both. *)
      !pr.(n) <- 0;
      if n < Bytes.length protect then Bytes.set protect n '\000';
      sub_insert m s n;
      (* Creation edges: the new node's children gain one parent. *)
      if lo >= 2 then !pr.(lo) <- !pr.(lo) + 1;
      if hi >= 2 then !pr.(hi) <- !pr.(hi) + 1;
      n
    end
  end

(* Reclaim the unreferenced, unprotected nodes queued by a swap,
   cascading through their children.  Each candidate is re-validated
   before detaching: still allocated, still parentless, unprotected,
   and still the unique-table entry for its key.  Detach, don't free:
   the slot leaves the table (so canonicity and the sifting size
   metric are exact) but its columns stay readable, because a client
   may still hold the handle — the boxed store kept such records alive
   through the OCaml GC, and [eval]/[size] on them must keep working.
   The next [gc] releases the ones no root marks. *)
let reorder_reap m pr protect queue =
  let rec drain () =
    match Queue.take_opt queue with
    | None -> ()
    | Some c ->
      (if
         c >= 2 && m.n_var.(c) >= 0 && !pr.(c) = 0
         && not (protected_ protect c)
       then begin
         let s = m.subs.(m.n_var.(c)) in
         let lo = m.n_lo.(c) and hi = m.n_hi.(c) in
         if sub_find m s lo hi = c then begin
           sub_remove m s c;
           m.live <- m.live - 1;
           m.zombies <- c :: m.zombies;
           let drop g =
             if g >= 2 then begin
               let r = !pr.(g) - 1 in
               !pr.(g) <- r;
               if r = 0 then Queue.add g queue
             end
           in
           drop lo;
           drop hi
         end
       end);
      drain ()
  in
  drain ()

(* Exchange levels l and l+1.  Atomic: no limit polls, no fault hooks,
   so an exception can only enter between swaps and the manager is
   always consistent. *)
let swap_levels m pr protect l =
  let x = m.lvl2var.(l) and y = m.lvl2var.(l + 1) in
  let xt = m.subs.(x) and yt = m.subs.(y) in
  let dep f = f >= 2 && m.n_var.(f) = y in
  let moving =
    Array.fold_left
      (fun acc e ->
        if e >= 2 && (dep m.n_lo.(e) || dep m.n_hi.(e)) then e :: acc else acc)
      [] xt.s_slots
  in
  let queue = Queue.create () in
  let decr f =
    if f >= 2 then begin
      let r = !pr.(f) - 1 in
      !pr.(f) <- r;
      if r = 0 && not (protected_ protect f) then Queue.add f queue
    end
  in
  let incr_ f = if f >= 2 then !pr.(f) <- !pr.(f) + 1 in
  List.iter
    (fun e ->
      let f0 = m.n_lo.(e) and f1 = m.n_hi.(e) in
      let f00, f01 =
        if dep f0 then (m.n_lo.(f0), m.n_hi.(f0)) else (f0, f0)
      in
      let f10, f11 =
        if dep f1 then (m.n_lo.(f1), m.n_hi.(f1)) else (f1, f1)
      in
      (* New cofactor nodes first (they may share the old children, so
         build before dropping edges). *)
      let new_lo = reorder_mk m pr protect x f00 f10 in
      let new_hi = reorder_mk m pr protect x f01 f11 in
      incr_ new_lo;
      incr_ new_hi;
      (* Remove under the old key while the columns still hold it. *)
      sub_remove m xt e;
      decr f0;
      decr f1;
      m.n_var.(e) <- y;
      m.n_lo.(e) <- new_lo;
      m.n_hi.(e) <- new_hi;
      sub_insert m yt e)
    moving;
  reorder_reap m pr protect queue;
  m.lvl2var.(l) <- y;
  m.lvl2var.(l + 1) <- x;
  m.var2lvl.(x) <- l + 1;
  m.var2lvl.(y) <- l

(* Prologue shared by every reordering entry point: build the in-table
   parent counts and the protection set (parentless tops + registered
   roots), run the body with [in_reorder] set, and on any exit flush
   the caches, clear the pending flag, advance the auto threshold and
   account the stats. *)
let with_reorder m body =
  if m.in_reorder then invalid_arg "Bdd.reorder: reentrant reorder";
  fault_tick m Reorder;
  let t0 = now_monotonic () in
  let before = m.live in
  m.in_reorder <- true;
  Fun.protect
    ~finally:(fun () ->
      m.in_reorder <- false;
      m.reorder_pending <- false;
      clear_caches m;
      if m.reorder_threshold <> max_int then
        m.reorder_threshold <- max (2 * m.live) m.reorder_threshold0;
      m.reorders <- m.reorders + 1;
      m.reorder_ms <- m.reorder_ms +. ((now_monotonic () -. t0) *. 1000.0);
      m.reorder_saved <- m.reorder_saved + (before - m.live))
    (fun () ->
      let pr = ref (Array.make m.n_cap 0) in
      let protect = Bytes.make m.n_cap '\000' in
      iter_nodes m (fun e ->
          let lo = m.n_lo.(e) and hi = m.n_hi.(e) in
          if lo >= 2 then !pr.(lo) <- !pr.(lo) + 1;
          if hi >= 2 then !pr.(hi) <- !pr.(hi) + 1);
      iter_nodes m (fun e ->
          if !pr.(e) = 0 then Bytes.set protect e '\001');
      Hashtbl.iter
        (fun _ provider ->
          List.iter
            (fun f -> if f >= 2 then Bytes.set protect f '\001')
            (provider ()))
        m.roots;
      body pr protect)

(* Poll attached limits between block exchanges so a deadline or node
   budget can abort a sift at a swap boundary. *)
let reorder_poll m =
  match m.limits with Some l -> limits_check_now m l | None -> ()

(* Bubble partners adjacent (top-down), so sifting can treat each
   current/next pair as one block. *)
let normalize_pairs m pr protect =
  let l = ref 0 in
  while !l < m.nvars - 1 do
    let v = m.lvl2var.(!l) in
    let p = m.pair_with.(v) in
    if p >= 0 then begin
      let pl = m.var2lvl.(p) in
      for k = pl - 1 downto !l + 1 do
        swap_levels m pr protect k
      done;
      l := !l + 2
    end
    else incr l
  done

(* The blocks (pairs + singletons) in level order. *)
let build_blocks m =
  let acc = ref [] and l = ref 0 in
  while !l < m.nvars do
    let v = m.lvl2var.(!l) in
    let p = m.pair_with.(v) in
    if p >= 0 && m.var2lvl.(p) = !l + 1 then begin
      acc := [| v; p |] :: !acc;
      l := !l + 2
    end
    else begin
      acc := [| v |] :: !acc;
      incr l
    end
  done;
  Array.of_list (List.rev !acc)

(* Exchange adjacent blocks i and i+1 (a block exchange of widths p,q
   is p*q adjacent-level swaps). *)
let exchange_blocks m pr protect blocks i =
  let bi = blocks.(i) and bj = blocks.(i + 1) in
  let p = Array.length bi in
  let base = m.var2lvl.(bi.(0)) in
  Array.iteri
    (fun k _ ->
      let cur = base + p + k in
      for l = cur - 1 downto base + k do
        swap_levels m pr protect l
      done)
    bj;
  blocks.(i) <- bj;
  blocks.(i + 1) <- bi;
  reorder_poll m

(* Rudell sifting over blocks: move each block (largest first) to both
   ends of the order, tracking total live nodes, and park it at the
   best position seen.  A scan direction is abandoned when the table
   grows past maxgrowth (1.2x), except while retreating through
   already-visited territory. *)
let do_sift m pr protect =
  if m.nvars > 1 then begin
    normalize_pairs m pr protect;
    let blocks = build_blocks m in
    let nb = Array.length blocks in
    let bsize b =
      Array.fold_left (fun acc v -> acc + m.subs.(v).s_count) 0 b
    in
    let order =
      List.stable_sort
        (fun (sa, ia, _) (sb, ib, _) ->
          if sa <> sb then Stdlib.compare sb sa else Stdlib.compare ia ib)
        (List.mapi (fun i b -> (bsize b, i, b)) (Array.to_list blocks))
      |> List.map (fun (_, _, b) -> b)
    in
    let index_of b =
      let r = ref (-1) in
      Array.iteri (fun i b' -> if b' == b then r := i) blocks;
      !r
    in
    List.iter
      (fun b ->
        let i0 = index_of b in
        let start_live = m.live in
        let limit = start_live + (start_live / 5) + 64 in
        let best = ref m.live and bestpos = ref i0 and pos = ref i0 in
        let down () =
          while !pos < nb - 1 && (!pos < i0 || m.live <= limit) do
            exchange_blocks m pr protect blocks !pos;
            incr pos;
            if m.live < !best then begin
              best := m.live;
              bestpos := !pos
            end
          done
        in
        let up () =
          while !pos > 0 && (!pos > i0 || m.live <= limit) do
            exchange_blocks m pr protect blocks (!pos - 1);
            decr pos;
            if m.live < !best then begin
              best := m.live;
              bestpos := !pos
            end
          done
        in
        if i0 >= nb / 2 then begin
          down ();
          up ()
        end
        else begin
          up ();
          down ()
        end;
        while !pos > !bestpos do
          exchange_blocks m pr protect blocks (!pos - 1);
          decr pos
        done;
        while !pos < !bestpos do
          exchange_blocks m pr protect blocks !pos;
          incr pos
        done)
      order
  end

let reorder m = with_reorder m (do_sift m)

module Reorder = struct
  let nvars m = m.nvars
  let level_of_var m v =
    if v < 0 || v >= m.nvars then invalid_arg "Bdd.Reorder.level_of_var";
    m.var2lvl.(v)
  let var_at_level m l =
    if l < 0 || l >= m.nvars then invalid_arg "Bdd.Reorder.var_at_level";
    m.lvl2var.(l)
  let order m = Array.sub m.lvl2var 0 m.nvars

  let sift = reorder

  let swap m l =
    if l < 0 || l >= m.nvars - 1 then invalid_arg "Bdd.Reorder.swap: bad level";
    with_reorder m (fun pr protect -> swap_levels m pr protect l)

  let set_order m ord =
    let n = Array.length ord in
    if n < m.nvars then
      invalid_arg "Bdd.Reorder.set_order: order shorter than variable count";
    let seen = Array.make n false in
    Array.iter
      (fun v ->
        if v < 0 || v >= n || seen.(v) then
          invalid_arg "Bdd.Reorder.set_order: not a permutation";
        seen.(v) <- true)
      ord;
    if n > 0 then ensure_var m (n - 1);
    if m.live = 0 then begin
      (* Empty manager: install directly. *)
      Array.iteri
        (fun l v ->
          m.lvl2var.(l) <- v;
          m.var2lvl.(v) <- l)
        ord;
      clear_caches m
    end
    else
      with_reorder m (fun pr protect ->
          (* Selection by bubbling: settle each target level in turn. *)
          for target = 0 to n - 1 do
            let v = ord.(target) in
            for l = m.var2lvl.(v) - 1 downto target do
              swap_levels m pr protect l
            done;
            reorder_poll m
          done)

  let set_pairs m pairs =
    List.iter
      (fun (a, b) ->
        if a < 0 || b < 0 || a = b then
          invalid_arg "Bdd.Reorder.set_pairs: bad pair";
        ensure_var m (max a b))
      pairs;
    Array.fill m.pair_with 0 (Array.length m.pair_with) (-1);
    List.iter
      (fun (a, b) ->
        if m.pair_with.(a) >= 0 || m.pair_with.(b) >= 0 then
          invalid_arg "Bdd.Reorder.set_pairs: variable in two pairs";
        m.pair_with.(a) <- b;
        m.pair_with.(b) <- a)
      pairs

  let pairs m =
    let acc = ref [] in
    for v = m.nvars - 1 downto 0 do
      let p = m.pair_with.(v) in
      if p > v then acc := (v, p) :: !acc
    done;
    !acc

  let set_auto m threshold =
    match threshold with
    | None ->
      m.reorder_threshold <- max_int;
      m.reorder_threshold0 <- max_int;
      m.reorder_pending <- false
    | Some n ->
      if n <= 0 then invalid_arg "Bdd.Reorder.set_auto: non-positive threshold";
      m.reorder_threshold <- n;
      m.reorder_threshold0 <- n;
      if m.live > n then m.reorder_pending <- true

  let auto_threshold m =
    if m.reorder_threshold = max_int then None else Some m.reorder_threshold

  let pending m = m.reorder_pending

  let with_checkpoints m k =
    let prev = m.auto_ok in
    m.auto_ok <- true;
    Fun.protect ~finally:(fun () -> m.auto_ok <- prev) k

  let checkpoint m =
    if m.reorder_pending && m.auto_ok && not m.in_reorder then reorder m
end

(* ------------------------------------------------------------------ *)
(* Resource governance, public face.  The record type and the checker
   live above (the manager and the hot loops need them); this module
   adds construction, attachment, and the explicit coarse-grained
   charge points used by the fixpoint engines. *)

module Limits = struct
  type nonrec t = limits

  type breach = limits_breach =
    | Deadline of { timeout : float; elapsed : float }
    | Node_budget of { budget : int; live : int }
    | Step_budget of { budget : int; steps : int }
    | Interrupted

  type progress = limits_progress = {
    steps : int;
    iterations : int;
    rings : int;
    witness_prefix : bool array list;
  }

  type info = limits_info = {
    breach : breach;
    stats : stats;
    progress : progress;
  }

  exception Exhausted = Limits_exhausted

  let create ?timeout ?node_budget ?step_budget ?cancel () =
    (match timeout with
    | Some t when not (t > 0.0) ->
      invalid_arg "Bdd.Limits.create: non-positive timeout"
    | Some _ | None -> ());
    (match node_budget with
    | Some n when n <= 0 ->
      invalid_arg "Bdd.Limits.create: non-positive node budget"
    | Some _ | None -> ());
    (match step_budget with
    | Some n when n <= 0 ->
      invalid_arg "Bdd.Limits.create: non-positive step budget"
    | Some _ | None -> ());
    let started = now_monotonic () in
    {
      started;
      timeout;
      deadline = (match timeout with Some t -> Some (started +. t) | None -> None);
      node_budget;
      step_budget;
      l_steps = 0;
      l_iterations = 0;
      l_rings = 0;
      l_witness = [];
      cancelled = (match cancel with Some c -> c | None -> Atomic.make false);
    }

  let unlimited () = create ()
  let cancel l = Atomic.set l.cancelled true
  let cancelled l = Atomic.get l.cancelled
  let progress l = limits_progress_of l
  let elapsed l = now_monotonic () -. l.started

  let attach m l =
    m.limits <- Some l;
    m.poll_countdown <- min m.poll_countdown poll_interval

  let detach m = m.limits <- None
  let attached m = m.limits

  let with_attached m l k =
    let previous = m.limits in
    attach m l;
    Fun.protect ~finally:(fun () -> m.limits <- previous) k

  let check = limits_check_now

  (* The [Step] fault site lives here rather than in [fault_tick]: a
     tripped deadline is a [Limits] breach, not an allocation failure,
     so it must funnel through [limits_breach] to carry the usual stats
     snapshot and partial progress. *)
  let fault_step_tick m l =
    match m.fault with
    | Some f when f.f_site = Step ->
      f.f_remaining <- f.f_remaining - 1;
      if f.f_remaining <= 0 then begin
        m.fault <- None;
        m.faults_fired <- m.faults_fired + 1;
        limits_breach m l
          (Deadline
             {
               timeout = (match l.timeout with Some t -> t | None -> 0.0);
               elapsed = now_monotonic () -. l.started;
             })
      end
    | Some _ | None -> ()

  let step m l =
    fault_step_tick m l;
    l.l_steps <- l.l_steps + 1;
    l.l_iterations <- l.l_iterations + 1;
    limits_check_now m l

  let ring_step m l =
    l.l_steps <- l.l_steps + 1;
    l.l_rings <- l.l_rings + 1;
    limits_check_now m l

  let note_witness l states = l.l_witness <- states

  let pp_breach ppf = function
    | Deadline { timeout; elapsed } ->
      Format.fprintf ppf "timeout after %.2fs (limit %gs)" elapsed timeout
    | Node_budget { budget; live } ->
      Format.fprintf ppf "node budget of %d exceeded (%d live nodes)" budget
        live
    | Step_budget { budget; steps } ->
      Format.fprintf ppf "step budget of %d exceeded (%d steps)" budget steps
    | Interrupted -> Format.fprintf ppf "interrupted"
end

(* ------------------------------------------------------------------ *)
(* Deterministic fault injection, public face.  The hooks themselves
   live on the hot paths above ([fault_tick] in [mk] / the cache
   probes / [gc] / [with_reorder], [fault_step_tick] in [Limits.step]);
   this module only arms and disarms them. *)

module Fault = struct
  type site = fault_site = Mk | Cache_probe | Gc | Step | Reorder

  let arm m ~site ~after =
    if after <= 0 then invalid_arg "Bdd.Fault.arm: non-positive count";
    m.fault <- Some { f_site = site; f_remaining = after }

  let disarm m = m.fault <- None

  let armed m =
    match m.fault with
    | None -> None
    | Some f -> Some (f.f_site, f.f_remaining)

  let fired m = m.faults_fired

  let site_to_string = function
    | Mk -> "mk"
    | Cache_probe -> "probe"
    | Gc -> "gc"
    | Step -> "step"
    | Reorder -> "reorder"

  let site_of_string = function
    | "mk" -> Some Mk
    | "probe" -> Some Cache_probe
    | "gc" -> Some Gc
    | "step" -> Some Step
    | "reorder" -> Some Reorder
    | _ -> None
end

let pp ppf f =
  if f = 0 then Format.fprintf ppf "false"
  else if f = 1 then Format.fprintf ppf "true"
  else Format.fprintf ppf "<bdd #%d>" f

let to_dot ?(name = fun v -> Printf.sprintf "v%d" v) m f =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "digraph bdd {\n";
  Buffer.add_string buf "  node [shape=circle];\n";
  Buffer.add_string buf "  f0 [label=\"0\", shape=box];\n";
  Buffer.add_string buf "  f1 [label=\"1\", shape=box];\n";
  let seen = Hashtbl.create 64 in
  let node_name f =
    if f = 0 then "f0" else if f = 1 then "f1" else Printf.sprintf "n%d" f
  in
  let rec go f =
    if f >= 2 && not (Hashtbl.mem seen f) then begin
      Hashtbl.add seen f ();
      Buffer.add_string buf
        (Printf.sprintf "  n%d [label=\"%s\"];\n" f (name m.n_var.(f)));
      Buffer.add_string buf
        (Printf.sprintf "  n%d -> %s [style=dashed];\n" f
           (node_name m.n_lo.(f)));
      Buffer.add_string buf
        (Printf.sprintf "  n%d -> %s;\n" f (node_name m.n_hi.(f)));
      go m.n_lo.(f);
      go m.n_hi.(f)
    end
  in
  go f;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Snapshots: a versioned, checksummed binary dump of the packed node
   store, for crash-only warm-state persistence.  Only the canonical
   structure travels — columns, free list, order permutation, sift
   pairs, zombies, and the flattened root handles.  Unique subtables
   and op-caches are derived state and are rebuilt from scratch on
   load: the rebuild re-proves canonicity node by node (a duplicate
   key raises [Corrupt]), so a snapshot can never import a corrupted
   table, and a cache is only ever a performance artifact. *)

module Snapshot = struct
  exception Corrupt of string

  let corrupt fmt = Printf.ksprintf (fun s -> raise (Corrupt s)) fmt

  (* Format: 8-byte magic (carries the version), a 16-byte [Digest]
     of the payload, then the payload as a little-endian int64
     sequence.  Bumping the layout bumps the magic. *)
  let magic = "BDDSNAP1"

  let dump m =
    let b = Buffer.create (64 + (24 * m.n_next)) in
    let put n = Buffer.add_int64_le b (Int64.of_int n) in
    put m.n_next;
    put m.free_head;
    put m.total_created;
    put m.live;
    put m.peak_nodes;
    put m.nvars;
    put m.cache_limit;
    for e = 2 to m.n_next - 1 do
      put m.n_var.(e);
      put m.n_lo.(e);
      put m.n_hi.(e)
    done;
    for v = 0 to m.nvars - 1 do
      put m.var2lvl.(v)
    done;
    for v = 0 to m.nvars - 1 do
      put m.lvl2var.(v)
    done;
    for v = 0 to m.nvars - 1 do
      put m.pair_with.(v)
    done;
    put (List.length m.zombies);
    List.iter put m.zombies;
    (* Root handles, flattened from the registered providers and
       deduplicated with a stable order: providers are closures and
       cannot travel, so the restored manager gets one static root
       pinning exactly the nodes these providers reach today. *)
    let root_handles =
      Hashtbl.fold (fun _ provider acc -> provider () @ acc) m.roots []
      |> List.sort_uniq Stdlib.compare
    in
    put (List.length root_handles);
    List.iter put root_handles;
    let payload = Buffer.contents b in
    let out = Buffer.create (24 + String.length payload) in
    Buffer.add_string out magic;
    Buffer.add_string out (Digest.string payload);
    Buffer.add_string out payload;
    Buffer.contents out

  let load blob =
    let len = String.length blob in
    if len < 24 then corrupt "snapshot too short (%d bytes)" len;
    if String.sub blob 0 8 <> magic then
      corrupt "bad magic %S (want %S)" (String.sub blob 0 8) magic;
    if String.sub blob 8 16 <> Digest.string (String.sub blob 24 (len - 24))
    then corrupt "checksum mismatch";
    let pos = ref 24 in
    let get () =
      if !pos + 8 > len then corrupt "truncated payload at byte %d" !pos;
      let v = Int64.to_int (String.get_int64_le blob !pos) in
      pos := !pos + 8;
      v
    in
    let n_next = get () in
    let free_head = get () in
    let total_created = get () in
    let live = get () in
    let peak_nodes = get () in
    let nvars = get () in
    let climit = get () in
    if n_next < 2 then corrupt "bad watermark %d" n_next;
    if nvars < 0 then corrupt "bad variable count %d" nvars;
    if live < 0 || live > n_next - 2 then corrupt "bad live count %d" live;
    let m = create ~unique_size:1024 () in
    let cap = pow2_at_least (max 1024 n_next) in
    m.n_var <- Array.make cap (-1);
    m.n_lo <- Array.make cap 0;
    m.n_hi <- Array.make cap 0;
    m.n_cap <- cap;
    m.n_next <- n_next;
    m.free_head <- free_head;
    m.total_created <- total_created;
    m.live <- 0 (* recounted by the subtable rebuild below *);
    for e = 2 to n_next - 1 do
      m.n_var.(e) <- get ();
      m.n_lo.(e) <- get ();
      m.n_hi.(e) <- get ()
    done;
    if nvars > 0 then ensure_var m (nvars - 1);
    let perm name =
      let a = Array.init nvars (fun _ -> get ()) in
      let seen = Array.make nvars false in
      Array.iter
        (fun l ->
          if l < 0 || l >= nvars then corrupt "%s out of range: %d" name l
          else if seen.(l) then corrupt "%s not a permutation (%d twice)" name l
          else seen.(l) <- true)
        a;
      a
    in
    let var2lvl = perm "var2lvl" in
    let lvl2var = perm "lvl2var" in
    Array.iteri
      (fun v l ->
        if lvl2var.(l) <> v then corrupt "var2lvl/lvl2var not inverse at %d" v)
      var2lvl;
    Array.blit var2lvl 0 m.var2lvl 0 nvars;
    Array.blit lvl2var 0 m.lvl2var 0 nvars;
    for v = 0 to nvars - 1 do
      let p = get () in
      if p < -1 || p >= nvars then corrupt "bad sift pair %d for var %d" p v;
      m.pair_with.(v) <- p
    done;
    let nzombies = get () in
    if nzombies < 0 || nzombies > n_next then
      corrupt "bad zombie count %d" nzombies;
    let zombie = Bytes.make n_next '\000' in
    let zombies = List.init nzombies (fun _ -> get ()) in
    List.iter
      (fun z ->
        if z < 2 || z >= n_next || m.n_var.(z) < 0 then
          corrupt "zombie %d is not a readable slot" z;
        Bytes.set zombie z '\001')
      zombies;
    m.zombies <- zombies;
    let nroots = get () in
    if nroots < 0 || nroots > n_next then corrupt "bad root count %d" nroots;
    let root_handles = List.init nroots (fun _ -> get ()) in
    (* Rebuild the unique subtables from the columns, re-proving the
       canonical invariants for every table entry: children in range
       and not on the free list, lo <> hi, child levels strictly
       deeper, and no duplicate (var, lo, hi) triple.  Zombie slots
       stay out of the tables (that is what makes them zombies) but
       their children must still be readable. *)
    for e = 2 to n_next - 1 do
      let v = m.n_var.(e) in
      if v >= 0 then begin
        if v >= nvars then corrupt "node %d has variable %d >= %d" e v nvars;
        let lo = m.n_lo.(e) and hi = m.n_hi.(e) in
        let child c =
          if c < 0 || c >= n_next then corrupt "node %d: child %d out of range" e c;
          if c >= 2 && m.n_var.(c) < 0 then
            corrupt "node %d: child %d is a free slot" e c
        in
        child lo;
        child hi;
        if Bytes.get zombie e = '\000' then begin
          if lo = hi then corrupt "node %d is redundant (lo = hi)" e;
          let deeper c =
            c >= 2 && m.var2lvl.(m.n_var.(c)) <= m.var2lvl.(v)
          in
          if deeper lo || deeper hi then
            corrupt "node %d: child above its level" e;
          let s = m.subs.(v) in
          if sub_find m s lo hi <> -1 then
            corrupt "duplicate node (%d, %d, %d)" v lo hi;
          sub_insert m s e;
          m.live <- m.live + 1
        end
      end
    done;
    if m.live <> live then
      corrupt "live count mismatch: header %d, rebuilt %d" live m.live;
    (* Walk the free list: every slot must be a hole, and the walk
       must terminate without revisiting (the visited byte doubles as
       the cycle guard). *)
    let freeseen = Bytes.make n_next '\000' in
    let nfree = ref 0 in
    let f = ref m.free_head in
    while !f >= 0 do
      if !f < 2 || !f >= n_next then corrupt "free list leaves the store";
      if m.n_var.(!f) >= 0 then corrupt "free list hits live slot %d" !f;
      if Bytes.get freeseen !f <> '\000' then corrupt "free list cycle";
      Bytes.set freeseen !f '\001';
      incr nfree;
      f := m.n_lo.(!f)
    done;
    for e = 2 to n_next - 1 do
      if m.n_var.(e) < 0 && Bytes.get freeseen e = '\000' then
        corrupt "hole %d not on the free list" e
    done;
    if !nfree + m.live + nzombies <> n_next - 2 then
      corrupt "slot accounting: %d free + %d live + %d zombies <> %d"
        !nfree m.live nzombies (n_next - 2);
    List.iter
      (fun r ->
        if r < 0 || r >= n_next || (r >= 2 && m.n_var.(r) < 0) then
          corrupt "root handle %d is not a node" r)
      root_handles;
    m.peak_nodes <- max peak_nodes m.live;
    set_cache_limit m (if climit = max_int then None else Some climit);
    ignore (add_root m (fun () -> root_handles) : int);
    m

  let save m ~path =
    let blob = dump m in
    let tmp = Printf.sprintf "%s.tmp.%d" path (Unix.getpid ()) in
    let oc = open_out_bin tmp in
    (try
       output_string oc blob;
       close_out oc
     with e ->
       close_out_noerr oc;
       (try Sys.remove tmp with Sys_error _ -> ());
       raise e);
    Sys.rename tmp path

  let restore ~path =
    let ic = open_in_bin path in
    let blob =
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    in
    load blob
end
