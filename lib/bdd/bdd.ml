(* Reduced ordered BDDs with hash-consing, memoised operations, and
   dynamic variable reordering.

   Invariants maintained by [mk]:
   - ordering: on every path from the root, variable *levels* strictly
     increase (the manager holds a mutable var <-> level bijection;
     with the default identity order, levels coincide with variable
     indices);
   - reduction: no node has [low == high], and no two distinct nodes
     of the same variable have the same (low, high) pair (per-variable
     unique subtables).

   Under these invariants structural identity is semantic equivalence,
   so [equal] is constant-time and operation caches can be keyed by
   node ids.

   Reordering works by adjacent-level swap: a node of the upper
   variable that depends on the lower one is rewritten *in place*
   (mutable [var]/[low]/[high]) to denote the same boolean function
   with the two variables exchanged, so external handles survive —
   only the two affected unique subtables are touched.  See the
   [Reorder] section below for the full invariant story. *)

type t =
  | False
  | True
  | Node of node

and node = { nid : int; mutable var : int; mutable low : t; mutable high : t }

(* Per-operation counters, updated in place on the hot path. *)
type opstat = {
  mutable calls : int;
  mutable hits : int;
  mutable misses : int;
}

let fresh_opstat () = { calls = 0; hits = 0; misses = 0 }

(* The time base for every duration and deadline in the package.  The
   monotonic clock cannot jump: an NTP step (or a sysadmin's date(1))
   moves [Unix.gettimeofday] arbitrarily far in either direction, which
   would spuriously breach — or silently extend — a wall-clock budget
   measured against it.  Deadlines are *relative* quantities, so they
   belong on CLOCK_MONOTONIC (the C stub falls back to the calendar
   clock only on platforms without one). *)
external now_monotonic : unit -> float = "bdd_monotonic_now"

(* Public (immutable) snapshots of the counters; declared before [man]
   so the resource-governance exception below can carry one. *)
type op_stats = { calls : int; hits : int; misses : int }

type stats = {
  ite : op_stats;
  exists : op_stats;
  forall : op_stats;
  relprod : op_stats;
  constrain : op_stats;
  live_nodes : int;
  peak_nodes : int;
  total_nodes : int;
  cache_evictions : int;
  gc_runs : int;
  gc_collected : int;
  reorders : int;
  reorder_ms : float;
  reorder_saved : int;
}

(* ------------------------------------------------------------------ *)
(* Resource governance: deadlines, node budgets, step budgets, and
   cooperative cancellation.

   A [limits] record is attached to a manager; the hot operation loops
   poll it every [poll_interval] cache probes (a countdown decrement
   per probe, one wall-clock read per interval), and the fixpoint /
   ring-descent layers charge their coarse-grained steps explicitly.
   The record is defined here, before [man], because the manager holds
   the attached instance; the public face is the [Limits] submodule
   below. *)

type limits_breach =
  | Deadline of { timeout : float; elapsed : float }
  | Node_budget of { budget : int; live : int }
  | Step_budget of { budget : int; steps : int }
  | Interrupted

type limits_progress = {
  steps : int;
  iterations : int;
  rings : int;
  witness_prefix : bool array list;
}

type limits = {
  started : float;            (* [now_monotonic] at creation *)
  timeout : float option;     (* requested duration, seconds *)
  deadline : float option;    (* absolute monotonic: started +. timeout *)
  node_budget : int option;   (* max live (unique-table) nodes *)
  step_budget : int option;   (* max fixpoint + ring-descent steps *)
  mutable l_steps : int;      (* budgeted steps consumed *)
  mutable l_iterations : int; (* fixpoint iterations completed *)
  mutable l_rings : int;      (* ring-descent segments completed *)
  mutable l_witness : bool array list;  (* best-so-far witness prefix *)
  cancelled : bool Atomic.t;
      (* cooperative-cancellation flag.  Atomic, not a plain mutable
         bool: cancellation is requested from outside the domain that
         owns the manager (a signal handler in the main domain, a
         coordinator cancelling worker domains), and a plain field
         written by one domain has no visibility guarantee in another.
         The flag may be shared between several bundles (one per worker
         spec) so a single store cancels them all. *)
}

(* Deterministic fault injection (public face: the [Fault] submodule).
   An armed fault names a site and a countdown; the matching hook
   decrements it and, at zero, disarms itself and raises.  One-shot by
   construction: a retry attempt after a recovery never re-trips the
   same injection.  Defined before [man] because the manager carries
   the armed fault. *)

type fault_site = Mk | Cache_probe | Gc | Step | Reorder

type fault = { f_site : fault_site; mutable f_remaining : int }

type man = {
  (* Unique tables, one per variable, keyed by (low id, high id).
     Splitting the table per variable is what makes an adjacent-level
     swap touch only the two affected subtables. *)
  mutable subtables : (int * int, t) Hashtbl.t array;
  mutable nvars : int;         (* variables ever mentioned *)
  mutable var2lvl : int array; (* variable -> level, a permutation *)
  mutable lvl2var : int array; (* level -> variable, its inverse *)
  mutable pair_with : int array;
      (* grouped-sifting partner of each variable, or -1; pairs are
         kept level-adjacent by [Reorder.sift] *)
  mutable live : int;          (* total nodes across the subtables *)
  mutable next_id : int;
  ite_cache : (int * int * int, t) Hashtbl.t;
  exists_cache : (int * int, t) Hashtbl.t;
  forall_cache : (int * int, t) Hashtbl.t;
  relprod_cache : (int * int * int, t) Hashtbl.t;
  constrain_cache : (int * int, t) Hashtbl.t;
  mutable cache_limit : int;
      (* per-cache high-water mark; [max_int] means unbounded *)
  mutable evictions : int;
  mutable peak_nodes : int;
  mutable gc_runs : int;
  mutable gc_collected : int;
  ite_stat : opstat;
  exists_stat : opstat;
  forall_stat : opstat;
  relprod_stat : opstat;
  constrain_stat : opstat;
  roots : (int, unit -> t list) Hashtbl.t;
  mutable next_root : int;
  mutable limits : limits option;
      (* the attached governance record, polled from the hot loops *)
  mutable poll_countdown : int;
      (* cache probes until the next full limits check *)
  mutable fault : fault option;
      (* armed fault injection, if any (chaos testing only) *)
  mutable faults_fired : int;
  (* --- dynamic reordering state --- *)
  mutable in_reorder : bool;   (* a swap/sift is running *)
  mutable reorder_pending : bool;
      (* [mk] crossed the auto threshold; serviced at checkpoints *)
  mutable auto_ok : bool;
      (* checkpoints may run a pending sift: true only inside regions
         whose live intermediates are all reachable from GC roots *)
  mutable reorder_threshold : int;  (* live nodes; [max_int] = auto off *)
  mutable reorder_threshold0 : int; (* initial threshold (doubling floor) *)
  mutable reorders : int;
  mutable reorder_ms : float;
  mutable reorder_saved : int;      (* nodes reclaimed by reordering *)
}

(* How many cache probes between full limit checks (wall-clock read +
   unique-table length).  The countdown decrement itself is the only
   per-probe cost, so this bounds both poll latency and overhead. *)
let poll_interval = 4096

let create ?(unique_size = 20_011) ?(cache_size = 20_011) ?cache_limit () =
  ignore unique_size;
  {
    subtables = Array.init 64 (fun _ -> Hashtbl.create 16);
    nvars = 0;
    var2lvl = Array.make 64 (-1);
    lvl2var = Array.make 64 (-1);
    pair_with = Array.make 64 (-1);
    live = 0;
    next_id = 2;
    ite_cache = Hashtbl.create cache_size;
    exists_cache = Hashtbl.create cache_size;
    forall_cache = Hashtbl.create cache_size;
    relprod_cache = Hashtbl.create cache_size;
    constrain_cache = Hashtbl.create cache_size;
    cache_limit = (match cache_limit with Some n -> n | None -> max_int);
    evictions = 0;
    peak_nodes = 0;
    gc_runs = 0;
    gc_collected = 0;
    ite_stat = fresh_opstat ();
    exists_stat = fresh_opstat ();
    forall_stat = fresh_opstat ();
    relprod_stat = fresh_opstat ();
    constrain_stat = fresh_opstat ();
    roots = Hashtbl.create 16;
    next_root = 0;
    limits = None;
    poll_countdown = poll_interval;
    fault = None;
    faults_fired = 0;
    in_reorder = false;
    reorder_pending = false;
    auto_ok = false;
    reorder_threshold = max_int;
    reorder_threshold0 = max_int;
    reorders = 0;
    reorder_ms = 0.0;
    reorder_saved = 0;
  }

(* Grow the variable universe to include [v].  New variables enter at
   the bottom of the order (level = index), which extends any existing
   permutation consistently: levels [nvars..v] are necessarily free. *)
let ensure_var m v =
  if v >= m.nvars then begin
    let n = v + 1 in
    let cap = Array.length m.subtables in
    if n > cap then begin
      let newcap = max n (2 * cap) in
      let st =
        Array.init newcap (fun i ->
            if i < cap then m.subtables.(i) else Hashtbl.create 16)
      in
      let grow a =
        let a' = Array.make newcap (-1) in
        Array.blit a 0 a' 0 m.nvars;
        a'
      in
      let v2l = grow m.var2lvl and l2v = grow m.lvl2var in
      let pw = grow m.pair_with in
      m.subtables <- st;
      m.var2lvl <- v2l;
      m.lvl2var <- l2v;
      m.pair_with <- pw
    end;
    for i = m.nvars to n - 1 do
      m.var2lvl.(i) <- i;
      m.lvl2var.(i) <- i
    done;
    m.nvars <- n
  end

let set_cache_limit m limit =
  (match limit with
  | Some n when n <= 0 -> invalid_arg "Bdd.set_cache_limit: non-positive limit"
  | Some _ | None -> ());
  m.cache_limit <- (match limit with Some n -> n | None -> max_int)

let cache_limit m = if m.cache_limit = max_int then None else Some m.cache_limit

let count_nodes m = m.next_id - 2
let live_nodes m = m.live

let snapshot_op (s : opstat) =
  { calls = s.calls; hits = s.hits; misses = s.misses }

let stats m =
  {
    ite = snapshot_op m.ite_stat;
    exists = snapshot_op m.exists_stat;
    forall = snapshot_op m.forall_stat;
    relprod = snapshot_op m.relprod_stat;
    constrain = snapshot_op m.constrain_stat;
    live_nodes = live_nodes m;
    peak_nodes = m.peak_nodes;
    total_nodes = count_nodes m;
    cache_evictions = m.evictions;
    gc_runs = m.gc_runs;
    gc_collected = m.gc_collected;
    reorders = m.reorders;
    reorder_ms = m.reorder_ms;
    reorder_saved = m.reorder_saved;
  }

(* ------------------------------------------------------------------ *)
(* Limit checking.  [limits_check_now] is the single breach point:
   every budget violation funnels through it, so [Limits_exhausted]
   always carries a fresh stats snapshot and the partial progress
   recorded so far. *)

type limits_info = {
  breach : limits_breach;
  stats : stats;
  progress : limits_progress;
}

exception Limits_exhausted of limits_info

let limits_progress_of (l : limits) =
  {
    steps = l.l_steps;
    iterations = l.l_iterations;
    rings = l.l_rings;
    witness_prefix = l.l_witness;
  }

let limits_breach m l breach =
  raise
    (Limits_exhausted
       { breach; stats = stats m; progress = limits_progress_of l })

let limits_check_now m (l : limits) =
  if Atomic.get l.cancelled then limits_breach m l Interrupted;
  (match l.node_budget with
  | Some budget ->
    let live = live_nodes m in
    if live > budget then limits_breach m l (Node_budget { budget; live })
  | None -> ());
  (match l.step_budget with
  | Some budget ->
    if l.l_steps > budget then
      limits_breach m l (Step_budget { budget; steps = l.l_steps })
  | None -> ());
  match l.deadline with
  | Some d ->
    let now = now_monotonic () in
    if now > d then
      limits_breach m l
        (Deadline
           {
             timeout = (match l.timeout with Some t -> t | None -> 0.0);
             elapsed = now -. l.started;
           })
  | None -> ()

(* The cooperative poll on the hot path: a countdown decrement per
   cache probe, a full check every [poll_interval] probes. *)
let poll m =
  m.poll_countdown <- m.poll_countdown - 1;
  if m.poll_countdown <= 0 then begin
    m.poll_countdown <- poll_interval;
    match m.limits with None -> () | Some l -> limits_check_now m l
  end

(* The fault hook on the hot sites.  Disarmed cost is one immediate
   field load and branch — unmeasurable next to the hash-table probe
   each site performs anyway (bench E12 keeps it honest).  When the
   countdown reaches zero the fault disarms itself first, then raises
   [Out_of_memory]: the same exception a genuine allocation failure at
   that site would surface, so recovery code cannot tell injected
   pressure from real pressure. *)
let fault_tick m site =
  match m.fault with
  | None -> ()
  | Some f ->
    if f.f_site = site then begin
      f.f_remaining <- f.f_remaining - 1;
      if f.f_remaining <= 0 then begin
        m.fault <- None;
        m.faults_fired <- m.faults_fired + 1;
        raise Out_of_memory
      end
    end

(* Cache lookups and insertions funnel through these two helpers so hit
   and miss counts stay accurate, every cache obeys the high-water
   mark, and attached resource limits are polled cooperatively.
   Eviction drops the whole table ([Hashtbl.reset]): correctness
   never depends on the caches, only sharing does, so a full reset
   mid-recursion merely forces recomputation. *)
let cache_find m (stat : opstat) cache key =
  fault_tick m Cache_probe;
  poll m;
  match Hashtbl.find_opt cache key with
  | Some _ as r ->
    stat.hits <- stat.hits + 1;
    r
  | None ->
    stat.misses <- stat.misses + 1;
    None

let cache_store m cache key r =
  Hashtbl.add cache key r;
  if Hashtbl.length cache > m.cache_limit then begin
    Hashtbl.reset cache;
    m.evictions <- m.evictions + 1
  end

let zero _ = False
let one _ = True

let id = function
  | False -> 0
  | True -> 1
  | Node n -> n.nid

let is_zero = function False -> true | True | Node _ -> false
let is_one = function True -> true | False | Node _ -> false
let equal a b = id a = id b
let compare a b = Stdlib.compare (id a) (id b)
let hash b = id b

let topvar = function
  | Node n -> n.var
  | False | True -> invalid_arg "Bdd.topvar: constant"

let low = function
  | Node n -> n.low
  | False | True -> invalid_arg "Bdd.low: constant"

let high = function
  | Node n -> n.high
  | False | True -> invalid_arg "Bdd.high: constant"

(* Root level, treating constants as deeper than everything.  With the
   default identity order this is the root variable index, so every
   level comparison below reproduces the historic var comparison
   bit-for-bit. *)
let lvl m = function
  | False | True -> max_int
  | Node n -> m.var2lvl.(n.var)

(* The only node constructor: reduces and hash-conses. *)
let mk m v lo hi =
  fault_tick m Mk;
  if equal lo hi then lo
  else begin
    ensure_var m v;
    let tbl = m.subtables.(v) in
    let key = (id lo, id hi) in
    match Hashtbl.find_opt tbl key with
    | Some n -> n
    | None ->
      let n = Node { nid = m.next_id; var = v; low = lo; high = hi } in
      m.next_id <- m.next_id + 1;
      Hashtbl.add tbl key n;
      m.live <- m.live + 1;
      if m.live > m.peak_nodes then m.peak_nodes <- m.live;
      (* Auto-reorder trigger: note the threshold crossing; the sift
         itself runs only at an explicit checkpoint (a safe point where
         every live intermediate is root-reachable), never here in the
         middle of an operation's recursion. *)
      if m.live > m.reorder_threshold && not m.in_reorder then
        m.reorder_pending <- true;
      n
  end

let var m v =
  if v < 0 then invalid_arg "Bdd.var: negative variable";
  mk m v False True

let nvar m v =
  if v < 0 then invalid_arg "Bdd.nvar: negative variable";
  mk m v True False

(* Cofactors with respect to a variable at or above the root. *)
let cofactors f v =
  match f with
  | Node n when n.var = v -> (n.low, n.high)
  | False | True | Node _ -> (f, f)

let rec ite m f g h =
  m.ite_stat.calls <- m.ite_stat.calls + 1;
  match f with
  | True -> g
  | False -> h
  | Node _ ->
    if equal g h then g
    else if is_one g && is_zero h then f
    else
      let key = (id f, id g, id h) in
      match cache_find m m.ite_stat m.ite_cache key with
      | Some r -> r
      | None ->
        let l = min (lvl m f) (min (lvl m g) (lvl m h)) in
        let v = m.lvl2var.(l) in
        let f0, f1 = cofactors f v
        and g0, g1 = cofactors g v
        and h0, h1 = cofactors h v in
        let lo = ite m f0 g0 h0 and hi = ite m f1 g1 h1 in
        let r = mk m v lo hi in
        cache_store m m.ite_cache key r;
        r

let not_ m f = ite m f False True
let and_ m f g = ite m f g False
let or_ m f g = ite m f True g
let xor m f g = ite m f (not_ m g) g
let imp m f g = ite m f g True
let iff m f g = ite m f g (not_ m g)
let diff m f g = ite m f (not_ m g) False
let conj m fs = List.fold_left (and_ m) True fs
let disj m fs = List.fold_left (or_ m) False fs
let subset m f g = is_zero (diff m f g)

let restrict m f v b =
  if v < 0 then invalid_arg "Bdd.restrict: negative variable";
  ensure_var m v;
  let vl = m.var2lvl.(v) in
  let rec go f =
    match f with
    | False | True -> f
    | Node n ->
      if m.var2lvl.(n.var) > vl then f
      else if n.var = v then if b then n.high else n.low
      else mk m n.var (go n.low) (go n.high)
  in
  go f

let cube m vs =
  let sorted = List.sort_uniq Stdlib.compare vs in
  List.iter
    (fun v ->
      if v < 0 then invalid_arg "Bdd.cube: negative variable";
      ensure_var m v)
    sorted;
  (* Build bottom-up in *level* order, deepest variable innermost. *)
  let by_level =
    List.stable_sort
      (fun a b -> Stdlib.compare m.var2lvl.(a) m.var2lvl.(b))
      sorted
  in
  List.fold_right (fun v acc -> mk m v False acc) by_level True

(* Skip cube variables above level [l] (they do not occur in the
   operand, so quantifying them is a no-op for that branch). *)
let rec cube_from m c l =
  match c with
  | Node n when m.var2lvl.(n.var) < l -> cube_from m n.high l
  | False | True | Node _ -> c

let rec exists m c f =
  m.exists_stat.calls <- m.exists_stat.calls + 1;
  match (f, c) with
  | (False | True), _ -> f
  | _, (True | False) -> f
  | Node nf, Node _ -> (
    let c = cube_from m c m.var2lvl.(nf.var) in
    match c with
    | True | False -> f
    | Node nc ->
      let key = (id f, id c) in
      (match cache_find m m.exists_stat m.exists_cache key with
      | Some r -> r
      | None ->
        let r =
          if nf.var = nc.var then
            or_ m (exists m nc.high nf.low) (exists m nc.high nf.high)
          else mk m nf.var (exists m c nf.low) (exists m c nf.high)
        in
        cache_store m m.exists_cache key r;
        r))

let rec forall m c f =
  m.forall_stat.calls <- m.forall_stat.calls + 1;
  match (f, c) with
  | (False | True), _ -> f
  | _, (True | False) -> f
  | Node nf, Node _ -> (
    let c = cube_from m c m.var2lvl.(nf.var) in
    match c with
    | True | False -> f
    | Node nc ->
      let key = (id f, id c) in
      (match cache_find m m.forall_stat m.forall_cache key with
      | Some r -> r
      | None ->
        let r =
          if nf.var = nc.var then
            and_ m (forall m nc.high nf.low) (forall m nc.high nf.high)
          else mk m nf.var (forall m c nf.low) (forall m c nf.high)
        in
        cache_store m m.forall_cache key r;
        r))

(* Relational product: exists c (f /\ g) in a single recursion, the
   workhorse of image computation. *)
let rec and_exists m c f g =
  m.relprod_stat.calls <- m.relprod_stat.calls + 1;
  match (f, g) with
  | False, _ | _, False -> False
  | True, True -> True
  | _, _ -> (
    match c with
    | True | False -> and_ m f g
    | Node _ -> (
      let l = min (lvl m f) (lvl m g) in
      let v = m.lvl2var.(l) in
      let c = cube_from m c l in
      match c with
      | True | False -> and_ m f g
      | Node nc ->
        (* Normalise the cache key: /\ is commutative. *)
        let i, j = if id f <= id g then (id f, id g) else (id g, id f) in
        let key = (i, j, id c) in
        (match cache_find m m.relprod_stat m.relprod_cache key with
        | Some r -> r
        | None ->
          let f0, f1 = cofactors f v and g0, g1 = cofactors g v in
          let r =
            if nc.var = v then
              or_ m (and_exists m nc.high f0 g0) (and_exists m nc.high f1 g1)
            else mk m v (and_exists m c f0 g0) (and_exists m c f1 g1)
          in
          cache_store m m.relprod_cache key r;
          r)))

(* Generalized cofactor (Coudert-Madre "constrain"): a function that
   agrees with [f] on [c] and may take any value outside it, chosen so
   the result is often much smaller than [f].  Key property:
   [c /\ constrain f c = c /\ f]. *)
let rec constrain m f c =
  m.constrain_stat.calls <- m.constrain_stat.calls + 1;
  match c with
  | False -> invalid_arg "Bdd.constrain: care set is empty"
  | True -> f
  | Node _ -> (
    match f with
    | False | True -> f
    | Node _ ->
      if equal f c then True
      else
        let key = (id f, id c) in
        (match cache_find m m.constrain_stat m.constrain_cache key with
        | Some r -> r
        | None ->
          let l = min (lvl m f) (lvl m c) in
          let v = m.lvl2var.(l) in
          let f0, f1 = cofactors f v and c0, c1 = cofactors c v in
          let r =
            if is_zero c1 then constrain m f0 c0
            else if is_zero c0 then constrain m f1 c1
            else mk m v (constrain m f0 c0) (constrain m f1 c1)
          in
          cache_store m m.constrain_cache key r;
          r))

let rename m f perm =
  (* [perm] must be injective on the support: two source variables
     mapped to one target would silently conflate their cofactors and
     produce a wrong diagram, so detect it up front (one O(size f)
     sweep, dominated by the rebuild below). *)
  let seen = Hashtbl.create 64 in
  let targets = Hashtbl.create 16 in
  let rec check = function
    | False | True -> ()
    | Node n ->
      if not (Hashtbl.mem seen n.nid) then begin
        Hashtbl.add seen n.nid ();
        let v' = perm n.var in
        if v' < 0 then invalid_arg "Bdd.rename: negative target variable";
        (match Hashtbl.find_opt targets v' with
        | Some src when src <> n.var ->
          invalid_arg "Bdd.rename: permutation not injective on support"
        | Some _ -> ()
        | None -> Hashtbl.add targets v' n.var);
        check n.low;
        check n.high
      end
  in
  check f;
  (* Rebuild bottom-up through ITE so that non-monotone permutations
     (in the *order* sense: the source walk needs no relation to the
     manager's current levels) are handled correctly; memoised per
     call. *)
  let memo = Hashtbl.create 1024 in
  let rec go f =
    match f with
    | False | True -> f
    | Node n -> (
      match Hashtbl.find_opt memo n.nid with
      | Some r -> r
      | None ->
        let r = ite m (var m (perm n.var)) (go n.high) (go n.low) in
        Hashtbl.add memo n.nid r;
        r)
  in
  go f

let support f =
  let seen = Hashtbl.create 64 in
  let vars = Hashtbl.create 64 in
  let rec go = function
    | False | True -> ()
    | Node n ->
      if not (Hashtbl.mem seen n.nid) then begin
        Hashtbl.add seen n.nid ();
        Hashtbl.replace vars n.var ();
        go n.low;
        go n.high
      end
  in
  go f;
  Hashtbl.fold (fun v () acc -> v :: acc) vars []
  |> List.sort Stdlib.compare

let size f =
  let seen = Hashtbl.create 64 in
  let rec go = function
    | False | True -> ()
    | Node n ->
      if not (Hashtbl.mem seen n.nid) then begin
        Hashtbl.add seen n.nid ();
        go n.low;
        go n.high
      end
  in
  go f;
  Hashtbl.length seen

let rec eval f env =
  match f with
  | False -> false
  | True -> true
  | Node n -> if env n.var then eval n.high env else eval n.low env

let sat_count m f n =
  if List.exists (fun v -> v >= n) (support f) then
    invalid_arg "Bdd.sat_count: support exceeds variable universe";
  if n > m.nvars then ensure_var m (n - 1);
  (* Weighted count over the n-variable universe, order-aware: crossing
     a gap of k universe variables (counted by level) multiplies by 2^k.
     [rank.(l)] counts universe variables at levels strictly below l;
     with the identity order rank.(l) = min l n, which reproduces the
     historic var-index arithmetic exactly. *)
  let nl = m.nvars in
  let rank = Array.make (nl + 1) 0 in
  for v = 0 to min n m.nvars - 1 do
    rank.(m.var2lvl.(v) + 1) <- rank.(m.var2lvl.(v) + 1) + 1
  done;
  for l = 1 to nl do
    rank.(l) <- rank.(l) + rank.(l - 1)
  done;
  let rank_of = function
    | False | True -> n
    | Node nd -> rank.(m.var2lvl.(nd.var))
  in
  let memo = Hashtbl.create 256 in
  let rec go f =
    match f with
    | False -> 0.0
    | True -> 1.0
    | Node nd -> (
      match Hashtbl.find_opt memo nd.nid with
      | Some c -> c
      | None ->
        let here = rank.(m.var2lvl.(nd.var)) in
        let weight branch =
          let sub = go branch in
          let gap = rank_of branch - here - 1 in
          sub *. Float.pow 2.0 (float_of_int gap)
        in
        let c = weight nd.low +. weight nd.high in
        Hashtbl.add memo nd.nid c;
        c)
  in
  go f *. Float.pow 2.0 (float_of_int (rank_of f))

let any_sat f =
  let rec go acc = function
    | False -> raise Not_found
    | True -> acc
    | Node n -> (
      match n.low with
      | False -> go ((n.var, true) :: acc) n.high
      | True | Node _ -> go ((n.var, false) :: acc) n.low)
  in
  (* The diagram walk visits variables in level order; return the cube
     sorted by variable index so callers see an order-independent
     result (identical to the historic one under the identity order). *)
  go [] f |> List.sort (fun (a, _) (b, _) -> Stdlib.compare a b)

let any_sat_total f ~vars =
  let partial = any_sat f in
  let tbl = Hashtbl.create (2 * List.length partial) in
  List.iter (fun (v, b) -> Hashtbl.replace tbl v b) partial;
  let mentioned = Hashtbl.create 16 in
  let assignment =
    List.map
      (fun v ->
        Hashtbl.replace mentioned v ();
        (v, match Hashtbl.find_opt tbl v with Some b -> b | None -> false))
      (List.sort_uniq Stdlib.compare vars)
  in
  List.iter
    (fun (v, _) ->
      if not (Hashtbl.mem mentioned v) then
        invalid_arg "Bdd.any_sat_total: support not contained in vars")
    partial;
  assignment

let fold_sat m f vars ~init ~f:k =
  let vars_a = Array.of_list vars in
  let nv = Array.length vars_a in
  Array.iter
    (fun v ->
      if v < 0 then invalid_arg "Bdd.fold_sat: negative variable";
      ensure_var m v)
    vars_a;
  let pos = Hashtbl.create (2 * nv) in
  Array.iteri (fun i v -> Hashtbl.replace pos v i) vars_a;
  (* Walk the given variables in *level* order (the diagram's own walk
     order); [order.(j)] is the position, in the caller's list, of the
     j-th variable by level.  Under the identity order this enumerates
     assignments exactly as the historic index-order walk did. *)
  let order = Array.init nv (fun i -> i) in
  let order =
    Array.of_list
      (List.stable_sort
         (fun i j ->
           Stdlib.compare m.var2lvl.(vars_a.(i)) m.var2lvl.(vars_a.(j)))
         (Array.to_list order))
  in
  let assign = Array.make nv false in
  let rec go acc j f =
    match f with
    | False -> acc
    | True | Node _ ->
      if j = nv then (match f with True -> k acc assign | False | Node _ -> acc)
      else
        let i = order.(j) in
        let v = vars_a.(i) in
        let f0, f1 =
          match f with
          | Node n when n.var = v -> (n.low, n.high)
          | False | True | Node _ -> (f, f)
        in
        assign.(i) <- false;
        let acc = go acc (j + 1) f0 in
        assign.(i) <- true;
        let acc = go acc (j + 1) f1 in
        assign.(i) <- false;
        acc
  in
  List.iter
    (fun v ->
      if not (Hashtbl.mem pos v) then
        invalid_arg "Bdd.fold_sat: support not contained in vars")
    (support f);
  go init 0 f

let clear_caches m =
  Hashtbl.reset m.ite_cache;
  Hashtbl.reset m.constrain_cache;
  Hashtbl.reset m.exists_cache;
  Hashtbl.reset m.forall_cache;
  Hashtbl.reset m.relprod_cache

(* Cross-manager copy, order-independent.  The fast path copies node
   by node through [mk]: valid whenever the destination order agrees
   with the source structure (every parent sits above both children in
   [dst]'s order), which is checked per node — one array read per
   edge.  The copy is then [dst]'s canonical diagram for the same
   function (copying is injective on structure, so reduction is
   preserved).  When the orders disagree the copy falls back to a
   memoised bottom-up ITE rebuild keyed by source var *ids*, which
   re-canonicalises in [dst]'s order — this is what lets parallel
   workers hold different orders than the coordinator.  Only the
   immutable-for-the-duration node structure of [f] is read, never the
   source manager's tables, so transfers may run from another domain
   (the source manager must be quiescent: no operations and no
   reordering while a transfer reads it). *)
exception Transfer_order

let transfer ~dst f =
  let memo : (int, t) Hashtbl.t = Hashtbl.create 1024 in
  let structural () =
    let rec go f =
      match f with
      | False | True -> f
      | Node n -> (
        match Hashtbl.find_opt memo n.nid with
        | Some r -> r
        | None ->
          let lo = go n.low in
          let hi = go n.high in
          ensure_var dst n.var;
          let lp = dst.var2lvl.(n.var) in
          if lp >= lvl dst lo || lp >= lvl dst hi then raise Transfer_order;
          let r = mk dst n.var lo hi in
          Hashtbl.add memo n.nid r;
          r)
    in
    go f
  in
  match structural () with
  | r -> r
  | exception Transfer_order ->
    Hashtbl.reset memo;
    let rec go f =
      match f with
      | False | True -> f
      | Node n -> (
        match Hashtbl.find_opt memo n.nid with
        | Some r -> r
        | None ->
          let r = ite dst (var dst n.var) (go n.high) (go n.low) in
          Hashtbl.add memo n.nid r;
          r)
    in
    go f

(* ------------------------------------------------------------------ *)
(* Statistics.                                                         *)

let cache_hits s =
  s.ite.hits + s.exists.hits + s.forall.hits + s.relprod.hits
  + s.constrain.hits

let cache_misses s =
  s.ite.misses + s.exists.misses + s.forall.misses + s.relprod.misses
  + s.constrain.misses

(* Pointwise sum of two snapshots, for aggregating the managers of a
   parallel run into one report.  Summing [peak_nodes] across managers
   that were live at the same time gives an upper bound on the
   simultaneous footprint, which is the number a memory budget cares
   about. *)
let merge_stats a b =
  let op (x : op_stats) (y : op_stats) =
    { calls = x.calls + y.calls;
      hits = x.hits + y.hits;
      misses = x.misses + y.misses }
  in
  {
    ite = op a.ite b.ite;
    exists = op a.exists b.exists;
    forall = op a.forall b.forall;
    relprod = op a.relprod b.relprod;
    constrain = op a.constrain b.constrain;
    live_nodes = a.live_nodes + b.live_nodes;
    peak_nodes = a.peak_nodes + b.peak_nodes;
    total_nodes = a.total_nodes + b.total_nodes;
    cache_evictions = a.cache_evictions + b.cache_evictions;
    gc_runs = a.gc_runs + b.gc_runs;
    gc_collected = a.gc_collected + b.gc_collected;
    reorders = a.reorders + b.reorders;
    reorder_ms = a.reorder_ms +. b.reorder_ms;
    reorder_saved = a.reorder_saved + b.reorder_saved;
  }

(* The per-request counterpart of [merge_stats]: attribute the work of
   one governed region of a long-lived (warm) manager by subtracting a
   snapshot taken at region entry.  Monotone counters subtract;
   [live_nodes] and [peak_nodes] are instantaneous readings, so the
   later snapshot's values are kept (pair with [reset_peak] when the
   region's own peak is wanted). *)
let diff_stats after before =
  let op (x : op_stats) (y : op_stats) =
    { calls = x.calls - y.calls;
      hits = x.hits - y.hits;
      misses = x.misses - y.misses }
  in
  {
    ite = op after.ite before.ite;
    exists = op after.exists before.exists;
    forall = op after.forall before.forall;
    relprod = op after.relprod before.relprod;
    constrain = op after.constrain before.constrain;
    live_nodes = after.live_nodes;
    peak_nodes = after.peak_nodes;
    total_nodes = after.total_nodes - before.total_nodes;
    cache_evictions = after.cache_evictions - before.cache_evictions;
    gc_runs = after.gc_runs - before.gc_runs;
    gc_collected = after.gc_collected - before.gc_collected;
    reorders = after.reorders - before.reorders;
    reorder_ms = after.reorder_ms -. before.reorder_ms;
    reorder_saved = after.reorder_saved - before.reorder_saved;
  }

let reset_peak m = m.peak_nodes <- m.live

let reset_stats m =
  let reset (s : opstat) =
    s.calls <- 0;
    s.hits <- 0;
    s.misses <- 0
  in
  reset m.ite_stat;
  reset m.exists_stat;
  reset m.forall_stat;
  reset m.relprod_stat;
  reset m.constrain_stat;
  m.evictions <- 0;
  m.gc_runs <- 0;
  m.gc_collected <- 0;
  m.peak_nodes <- live_nodes m;
  m.reorders <- 0;
  m.reorder_ms <- 0.0;
  m.reorder_saved <- 0

let pp_stats ppf s =
  let op name (o : op_stats) =
    Format.fprintf ppf "  %-10s %10d calls %10d hits %10d misses@," name
      o.calls o.hits o.misses
  in
  Format.fprintf ppf "@[<v>BDD manager: %d live nodes (peak %d, %d allocated)@,"
    s.live_nodes s.peak_nodes s.total_nodes;
  op "ite" s.ite;
  op "exists" s.exists;
  op "forall" s.forall;
  op "relprod" s.relprod;
  op "constrain" s.constrain;
  Format.fprintf ppf
    "  cache hits %d  misses %d  evictions %d@,  gc runs %d (collected %d nodes)"
    (cache_hits s) (cache_misses s) s.cache_evictions s.gc_runs s.gc_collected;
  (* Printed only when reordering actually ran, so a --reorder none run
     reports byte-identically to managers that predate reordering. *)
  if s.reorders > 0 then
    Format.fprintf ppf "@,  reorders %d (saved %d nodes, %.1f ms)" s.reorders
      s.reorder_saved s.reorder_ms;
  Format.fprintf ppf "@]"

(* ------------------------------------------------------------------ *)
(* Explicit roots and mark-and-sweep garbage collection.               *)

type root = int

let add_root m f =
  let r = m.next_root in
  m.next_root <- r + 1;
  Hashtbl.replace m.roots r f;
  r

let remove_root m r = Hashtbl.remove m.roots r

let with_root m f k =
  let r = add_root m f in
  Fun.protect ~finally:(fun () -> remove_root m r) k

let iter_nodes m f = Array.iter (fun tbl -> Hashtbl.iter (fun _ n -> f n) tbl) m.subtables

let gc m =
  fault_tick m Gc;
  let marked = Hashtbl.create (max 64 m.live) in
  let rec mark = function
    | False | True -> ()
    | Node n ->
      if not (Hashtbl.mem marked n.nid) then begin
        Hashtbl.add marked n.nid ();
        mark n.low;
        mark n.high
      end
  in
  Hashtbl.iter (fun _ provider -> List.iter mark (provider ())) m.roots;
  let before = m.live in
  Array.iter
    (fun tbl ->
      Hashtbl.filter_map_inplace
        (fun _ n ->
          match n with
          | Node nd -> if Hashtbl.mem marked nd.nid then Some n else None
          | False | True -> Some n)
        tbl)
    m.subtables;
  m.live <-
    Array.fold_left (fun acc tbl -> acc + Hashtbl.length tbl) 0 m.subtables;
  (* The operation caches may hold (and keep alive) nodes just swept
     from the unique table; returning one later would break canonicity,
     so they must go too. *)
  clear_caches m;
  let collected = before - m.live in
  m.gc_runs <- m.gc_runs + 1;
  m.gc_collected <- m.gc_collected + collected;
  collected

(* ------------------------------------------------------------------ *)
(* Dynamic variable reordering (Rudell sifting).

   The primitive is the adjacent-level swap.  Let x be the variable at
   level l and y at level l+1.  Every x-node n = (x, f0, f1) with at
   least one child rooted at y is rewritten in place to

       n := (y, mk(x, f00, f10), mk(x, f01, f11))

   where fij is the y=j cofactor of fi — the same boolean function
   with the two levels exchanged.  The rewrite mutates n's fields, so
   n's id (and every external [t] handle to it) survives; only
   subtable x (n's old entry leaves) and subtable y (its new entry
   arrives) change.  x-nodes not depending on y, and all other levels,
   are untouched.  No unique-table collisions can occur: a collision
   would exhibit two distinct nodes for one function *before* the
   swap, contradicting canonicity.

   Children orphaned by rewrites (the old f0/f1 and, recursively,
   their descendants) are reclaimed by local reference counting so
   the sifting size metric is exact.  Protection rules: a node that
   had no in-table parent when the reorder started (a client-held
   result top, or garbage we must not touch because clients may hold
   it) and every root-provider top is never reclaimed; everything
   else dies when its last in-table parent drops it.  This gives
   reordering the same contract as [gc]: diagrams whose roots are
   registered (or simply held as handles) survive with identities and
   meaning intact; resurrecting an *interior* node of an unrooted
   diagram afterwards is unsound.

   The operation caches are structurally still correct after a swap
   (every node keeps its function) but may reference reclaimed nodes,
   so they are flushed when the reorder finishes — also on an abort:
   [Limits] is polled between block exchanges, and each swap is
   atomic, so a deadline abort mid-sift leaves a consistent manager
   with whatever order the sift had reached. *)

let reorder_mk m parents v lo hi =
  if equal lo hi then lo
  else begin
    let tbl = m.subtables.(v) in
    let key = (id lo, id hi) in
    match Hashtbl.find_opt tbl key with
    | Some n -> n
    | None ->
      let n = Node { nid = m.next_id; var = v; low = lo; high = hi } in
      m.next_id <- m.next_id + 1;
      Hashtbl.add tbl key n;
      m.live <- m.live + 1;
      if m.live > m.peak_nodes then m.peak_nodes <- m.live;
      (* Creation edges: the new node's children gain one parent. *)
      (match lo with
      | Node c ->
        Hashtbl.replace parents c.nid
          (1 + Option.value (Hashtbl.find_opt parents c.nid) ~default:0)
      | False | True -> ());
      (match hi with
      | Node c ->
        Hashtbl.replace parents c.nid
          (1 + Option.value (Hashtbl.find_opt parents c.nid) ~default:0)
      | False | True -> ());
      n
  end

(* Reclaim the unreferenced, unprotected nodes queued by a swap,
   cascading through their children. *)
let reorder_reap m parents protect queue =
  let rec drain () =
    match Queue.take_opt queue with
    | None -> ()
    | Some ch ->
      (match ch with
      | Node c
        when Hashtbl.find_opt parents c.nid = Some 0
             && not (Hashtbl.mem protect c.nid) -> (
        let tbl = m.subtables.(c.var) in
        let key = (id c.low, id c.high) in
        match Hashtbl.find_opt tbl key with
        | Some (Node c') when c'.nid = c.nid ->
          Hashtbl.remove tbl key;
          m.live <- m.live - 1;
          Hashtbl.remove parents c.nid;
          let drop ch' =
            match ch' with
            | Node g ->
              (match Hashtbl.find_opt parents g.nid with
              | Some r ->
                Hashtbl.replace parents g.nid (r - 1);
                if r - 1 = 0 then Queue.add ch' queue
              | None -> ())
            | False | True -> ()
          in
          drop c.low;
          drop c.high
        | Some _ | None -> ())
      | Node _ | False | True -> ());
      drain ()
  in
  drain ()

(* Exchange levels l and l+1.  Atomic: no limit polls, no fault hooks,
   so an exception can only enter between swaps and the manager is
   always consistent. *)
let swap_levels m parents protect l =
  let x = m.lvl2var.(l) and y = m.lvl2var.(l + 1) in
  let xt = m.subtables.(x) and yt = m.subtables.(y) in
  let depends_on_y = function
    | Node c -> c.var = y
    | False | True -> false
  in
  let moving =
    Hashtbl.fold
      (fun _ n acc ->
        match n with
        | Node nd when depends_on_y nd.low || depends_on_y nd.high ->
          nd :: acc
        | Node _ | False | True -> acc)
      xt []
  in
  let queue = Queue.create () in
  let decr ch =
    match ch with
    | Node c -> (
      match Hashtbl.find_opt parents c.nid with
      | Some r ->
        Hashtbl.replace parents c.nid (r - 1);
        if r - 1 = 0 && not (Hashtbl.mem protect c.nid) then
          Queue.add ch queue
      | None -> ())
    | False | True -> ()
  in
  let incr ch =
    match ch with
    | Node c ->
      Hashtbl.replace parents c.nid
        (1 + Option.value (Hashtbl.find_opt parents c.nid) ~default:0)
    | False | True -> ()
  in
  List.iter
    (fun nd ->
      let f0 = nd.low and f1 = nd.high in
      let c_y f =
        match f with
        | Node c when c.var = y -> (c.low, c.high)
        | False | True | Node _ -> (f, f)
      in
      let f00, f01 = c_y f0 and f10, f11 = c_y f1 in
      (* New cofactor nodes first (they may share the old children, so
         build before dropping edges). *)
      let new_lo = reorder_mk m parents x f00 f10 in
      let new_hi = reorder_mk m parents x f01 f11 in
      incr new_lo;
      incr new_hi;
      Hashtbl.remove xt (id f0, id f1);
      decr f0;
      decr f1;
      nd.var <- y;
      nd.low <- new_lo;
      nd.high <- new_hi;
      let key = (id new_lo, id new_hi) in
      assert (not (Hashtbl.mem yt key));
      Hashtbl.add yt key (Node nd))
    moving;
  reorder_reap m parents protect queue;
  m.lvl2var.(l) <- y;
  m.lvl2var.(l + 1) <- x;
  m.var2lvl.(x) <- l + 1;
  m.var2lvl.(y) <- l

(* Prologue shared by every reordering entry point: build the in-table
   parent counts and the protection set (parentless tops + registered
   roots), run the body with [in_reorder] set, and on any exit flush
   the caches, clear the pending flag, advance the auto threshold and
   account the stats. *)
let with_reorder m body =
  if m.in_reorder then invalid_arg "Bdd.reorder: reentrant reorder";
  fault_tick m Reorder;
  let t0 = now_monotonic () in
  let before = m.live in
  m.in_reorder <- true;
  Fun.protect
    ~finally:(fun () ->
      m.in_reorder <- false;
      m.reorder_pending <- false;
      clear_caches m;
      if m.reorder_threshold <> max_int then
        m.reorder_threshold <- max (2 * m.live) m.reorder_threshold0;
      m.reorders <- m.reorders + 1;
      m.reorder_ms <- m.reorder_ms +. ((now_monotonic () -. t0) *. 1000.0);
      m.reorder_saved <- m.reorder_saved + (before - m.live))
    (fun () ->
      let parents = Hashtbl.create (max 64 m.live) in
      let incr ch =
        match ch with
        | Node c ->
          Hashtbl.replace parents c.nid
            (1 + Option.value (Hashtbl.find_opt parents c.nid) ~default:0)
        | False | True -> ()
      in
      iter_nodes m (fun n ->
          match n with
          | Node nd ->
            incr nd.low;
            incr nd.high
          | False | True -> ());
      let protect = Hashtbl.create 256 in
      iter_nodes m (fun n ->
          match n with
          | Node nd ->
            if not (Hashtbl.mem parents nd.nid) then begin
              Hashtbl.replace parents nd.nid 0;
              Hashtbl.replace protect nd.nid ()
            end
          | False | True -> ());
      Hashtbl.iter
        (fun _ provider ->
          List.iter
            (fun f ->
              match f with
              | Node nd -> Hashtbl.replace protect nd.nid ()
              | False | True -> ())
            (provider ()))
        m.roots;
      body parents protect)

(* Poll attached limits between block exchanges so a deadline or node
   budget can abort a sift at a swap boundary. *)
let reorder_poll m =
  match m.limits with Some l -> limits_check_now m l | None -> ()

(* Bubble partners adjacent (top-down), so sifting can treat each
   current/next pair as one block. *)
let normalize_pairs m parents protect =
  let l = ref 0 in
  while !l < m.nvars - 1 do
    let v = m.lvl2var.(!l) in
    let p = m.pair_with.(v) in
    if p >= 0 then begin
      let pl = m.var2lvl.(p) in
      for k = pl - 1 downto !l + 1 do
        swap_levels m parents protect k
      done;
      l := !l + 2
    end
    else incr l
  done

(* The blocks (pairs + singletons) in level order. *)
let build_blocks m =
  let acc = ref [] and l = ref 0 in
  while !l < m.nvars do
    let v = m.lvl2var.(!l) in
    let p = m.pair_with.(v) in
    if p >= 0 && m.var2lvl.(p) = !l + 1 then begin
      acc := [| v; p |] :: !acc;
      l := !l + 2
    end
    else begin
      acc := [| v |] :: !acc;
      incr l
    end
  done;
  Array.of_list (List.rev !acc)

(* Exchange adjacent blocks i and i+1 (a block exchange of widths p,q
   is p*q adjacent-level swaps). *)
let exchange_blocks m parents protect blocks i =
  let bi = blocks.(i) and bj = blocks.(i + 1) in
  let p = Array.length bi in
  let base = m.var2lvl.(bi.(0)) in
  Array.iteri
    (fun k _ ->
      let cur = base + p + k in
      for l = cur - 1 downto base + k do
        swap_levels m parents protect l
      done)
    bj;
  blocks.(i) <- bj;
  blocks.(i + 1) <- bi;
  reorder_poll m

(* Rudell sifting over blocks: move each block (largest first) to both
   ends of the order, tracking total live nodes, and park it at the
   best position seen.  A scan direction is abandoned when the table
   grows past maxgrowth (1.2x), except while retreating through
   already-visited territory. *)
let do_sift m parents protect =
  if m.nvars > 1 then begin
    normalize_pairs m parents protect;
    let blocks = build_blocks m in
    let nb = Array.length blocks in
    let bsize b =
      Array.fold_left (fun acc v -> acc + Hashtbl.length m.subtables.(v)) 0 b
    in
    let order =
      List.stable_sort
        (fun (sa, ia, _) (sb, ib, _) ->
          if sa <> sb then Stdlib.compare sb sa else Stdlib.compare ia ib)
        (List.mapi (fun i b -> (bsize b, i, b)) (Array.to_list blocks))
      |> List.map (fun (_, _, b) -> b)
    in
    let index_of b =
      let r = ref (-1) in
      Array.iteri (fun i b' -> if b' == b then r := i) blocks;
      !r
    in
    List.iter
      (fun b ->
        let i0 = index_of b in
        let start_live = m.live in
        let limit = start_live + (start_live / 5) + 64 in
        let best = ref m.live and bestpos = ref i0 and pos = ref i0 in
        let down () =
          while !pos < nb - 1 && (!pos < i0 || m.live <= limit) do
            exchange_blocks m parents protect blocks !pos;
            incr pos;
            if m.live < !best then begin
              best := m.live;
              bestpos := !pos
            end
          done
        in
        let up () =
          while !pos > 0 && (!pos > i0 || m.live <= limit) do
            exchange_blocks m parents protect blocks (!pos - 1);
            decr pos;
            if m.live < !best then begin
              best := m.live;
              bestpos := !pos
            end
          done
        in
        if i0 >= nb / 2 then begin
          down ();
          up ()
        end
        else begin
          up ();
          down ()
        end;
        while !pos > !bestpos do
          exchange_blocks m parents protect blocks (!pos - 1);
          decr pos
        done;
        while !pos < !bestpos do
          exchange_blocks m parents protect blocks !pos;
          incr pos
        done)
      order
  end

let reorder m = with_reorder m (do_sift m)

module Reorder = struct
  let nvars m = m.nvars
  let level_of_var m v =
    if v < 0 || v >= m.nvars then invalid_arg "Bdd.Reorder.level_of_var";
    m.var2lvl.(v)
  let var_at_level m l =
    if l < 0 || l >= m.nvars then invalid_arg "Bdd.Reorder.var_at_level";
    m.lvl2var.(l)
  let order m = Array.sub m.lvl2var 0 m.nvars

  let sift = reorder

  let swap m l =
    if l < 0 || l >= m.nvars - 1 then invalid_arg "Bdd.Reorder.swap: bad level";
    with_reorder m (fun parents protect -> swap_levels m parents protect l)

  let set_order m ord =
    let n = Array.length ord in
    if n < m.nvars then
      invalid_arg "Bdd.Reorder.set_order: order shorter than variable count";
    let seen = Array.make n false in
    Array.iter
      (fun v ->
        if v < 0 || v >= n || seen.(v) then
          invalid_arg "Bdd.Reorder.set_order: not a permutation";
        seen.(v) <- true)
      ord;
    if n > 0 then ensure_var m (n - 1);
    if m.live = 0 then begin
      (* Empty manager: install directly. *)
      Array.iteri
        (fun l v ->
          m.lvl2var.(l) <- v;
          m.var2lvl.(v) <- l)
        ord;
      clear_caches m
    end
    else
      with_reorder m (fun parents protect ->
          (* Selection by bubbling: settle each target level in turn. *)
          for target = 0 to n - 1 do
            let v = ord.(target) in
            for l = m.var2lvl.(v) - 1 downto target do
              swap_levels m parents protect l
            done;
            reorder_poll m
          done)

  let set_pairs m pairs =
    List.iter
      (fun (a, b) ->
        if a < 0 || b < 0 || a = b then
          invalid_arg "Bdd.Reorder.set_pairs: bad pair";
        ensure_var m (max a b))
      pairs;
    Array.fill m.pair_with 0 (Array.length m.pair_with) (-1);
    List.iter
      (fun (a, b) ->
        if m.pair_with.(a) >= 0 || m.pair_with.(b) >= 0 then
          invalid_arg "Bdd.Reorder.set_pairs: variable in two pairs";
        m.pair_with.(a) <- b;
        m.pair_with.(b) <- a)
      pairs

  let pairs m =
    let acc = ref [] in
    for v = m.nvars - 1 downto 0 do
      let p = m.pair_with.(v) in
      if p > v then acc := (v, p) :: !acc
    done;
    !acc

  let set_auto m threshold =
    match threshold with
    | None ->
      m.reorder_threshold <- max_int;
      m.reorder_threshold0 <- max_int;
      m.reorder_pending <- false
    | Some n ->
      if n <= 0 then invalid_arg "Bdd.Reorder.set_auto: non-positive threshold";
      m.reorder_threshold <- n;
      m.reorder_threshold0 <- n;
      if m.live > n then m.reorder_pending <- true

  let auto_threshold m =
    if m.reorder_threshold = max_int then None else Some m.reorder_threshold

  let pending m = m.reorder_pending

  let with_checkpoints m k =
    let prev = m.auto_ok in
    m.auto_ok <- true;
    Fun.protect ~finally:(fun () -> m.auto_ok <- prev) k

  let checkpoint m =
    if m.reorder_pending && m.auto_ok && not m.in_reorder then reorder m
end

(* ------------------------------------------------------------------ *)
(* Resource governance, public face.  The record type and the checker
   live above (the manager and the hot loops need them); this module
   adds construction, attachment, and the explicit coarse-grained
   charge points used by the fixpoint engines. *)

module Limits = struct
  type nonrec t = limits

  type breach = limits_breach =
    | Deadline of { timeout : float; elapsed : float }
    | Node_budget of { budget : int; live : int }
    | Step_budget of { budget : int; steps : int }
    | Interrupted

  type progress = limits_progress = {
    steps : int;
    iterations : int;
    rings : int;
    witness_prefix : bool array list;
  }

  type info = limits_info = {
    breach : breach;
    stats : stats;
    progress : progress;
  }

  exception Exhausted = Limits_exhausted

  let create ?timeout ?node_budget ?step_budget ?cancel () =
    (match timeout with
    | Some t when not (t > 0.0) ->
      invalid_arg "Bdd.Limits.create: non-positive timeout"
    | Some _ | None -> ());
    (match node_budget with
    | Some n when n <= 0 ->
      invalid_arg "Bdd.Limits.create: non-positive node budget"
    | Some _ | None -> ());
    (match step_budget with
    | Some n when n <= 0 ->
      invalid_arg "Bdd.Limits.create: non-positive step budget"
    | Some _ | None -> ());
    let started = now_monotonic () in
    {
      started;
      timeout;
      deadline = (match timeout with Some t -> Some (started +. t) | None -> None);
      node_budget;
      step_budget;
      l_steps = 0;
      l_iterations = 0;
      l_rings = 0;
      l_witness = [];
      cancelled = (match cancel with Some c -> c | None -> Atomic.make false);
    }

  let unlimited () = create ()
  let cancel l = Atomic.set l.cancelled true
  let cancelled l = Atomic.get l.cancelled
  let progress l = limits_progress_of l
  let elapsed l = now_monotonic () -. l.started

  let attach m l =
    m.limits <- Some l;
    m.poll_countdown <- min m.poll_countdown poll_interval

  let detach m = m.limits <- None
  let attached m = m.limits

  let with_attached m l k =
    let previous = m.limits in
    attach m l;
    Fun.protect ~finally:(fun () -> m.limits <- previous) k

  let check = limits_check_now

  (* The [Step] fault site lives here rather than in [fault_tick]: a
     tripped deadline is a [Limits] breach, not an allocation failure,
     so it must funnel through [limits_breach] to carry the usual stats
     snapshot and partial progress. *)
  let fault_step_tick m l =
    match m.fault with
    | Some f when f.f_site = Step ->
      f.f_remaining <- f.f_remaining - 1;
      if f.f_remaining <= 0 then begin
        m.fault <- None;
        m.faults_fired <- m.faults_fired + 1;
        limits_breach m l
          (Deadline
             {
               timeout = (match l.timeout with Some t -> t | None -> 0.0);
               elapsed = now_monotonic () -. l.started;
             })
      end
    | Some _ | None -> ()

  let step m l =
    fault_step_tick m l;
    l.l_steps <- l.l_steps + 1;
    l.l_iterations <- l.l_iterations + 1;
    limits_check_now m l

  let ring_step m l =
    l.l_steps <- l.l_steps + 1;
    l.l_rings <- l.l_rings + 1;
    limits_check_now m l

  let note_witness l states = l.l_witness <- states

  let pp_breach ppf = function
    | Deadline { timeout; elapsed } ->
      Format.fprintf ppf "timeout after %.2fs (limit %gs)" elapsed timeout
    | Node_budget { budget; live } ->
      Format.fprintf ppf "node budget of %d exceeded (%d live nodes)" budget
        live
    | Step_budget { budget; steps } ->
      Format.fprintf ppf "step budget of %d exceeded (%d steps)" budget steps
    | Interrupted -> Format.fprintf ppf "interrupted"
end

(* ------------------------------------------------------------------ *)
(* Deterministic fault injection, public face.  The hooks themselves
   live on the hot paths above ([fault_tick] in [mk] / [cache_find] /
   [gc] / [with_reorder], [fault_step_tick] in [Limits.step]); this
   module only arms and disarms them. *)

module Fault = struct
  type site = fault_site = Mk | Cache_probe | Gc | Step | Reorder

  let arm m ~site ~after =
    if after <= 0 then invalid_arg "Bdd.Fault.arm: non-positive count";
    m.fault <- Some { f_site = site; f_remaining = after }

  let disarm m = m.fault <- None

  let armed m =
    match m.fault with
    | None -> None
    | Some f -> Some (f.f_site, f.f_remaining)

  let fired m = m.faults_fired

  let site_to_string = function
    | Mk -> "mk"
    | Cache_probe -> "probe"
    | Gc -> "gc"
    | Step -> "step"
    | Reorder -> "reorder"

  let site_of_string = function
    | "mk" -> Some Mk
    | "probe" -> Some Cache_probe
    | "gc" -> Some Gc
    | "step" -> Some Step
    | "reorder" -> Some Reorder
    | _ -> None
end

let pp ppf f =
  match f with
  | False -> Format.fprintf ppf "false"
  | True -> Format.fprintf ppf "true"
  | Node n ->
    Format.fprintf ppf "<bdd #%d root=v%d nodes=%d>" n.nid n.var (size f)

let to_dot ?(name = fun v -> Printf.sprintf "v%d" v) f =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "digraph bdd {\n";
  Buffer.add_string buf "  node [shape=circle];\n";
  Buffer.add_string buf "  f0 [label=\"0\", shape=box];\n";
  Buffer.add_string buf "  f1 [label=\"1\", shape=box];\n";
  let seen = Hashtbl.create 64 in
  let node_name = function
    | False -> "f0"
    | True -> "f1"
    | Node n -> Printf.sprintf "n%d" n.nid
  in
  let rec go = function
    | False | True -> ()
    | Node n ->
      if not (Hashtbl.mem seen n.nid) then begin
        Hashtbl.add seen n.nid ();
        Buffer.add_string buf
          (Printf.sprintf "  n%d [label=\"%s\"];\n" n.nid (name n.var));
        Buffer.add_string buf
          (Printf.sprintf "  n%d -> %s [style=dashed];\n" n.nid
             (node_name n.low));
        Buffer.add_string buf
          (Printf.sprintf "  n%d -> %s;\n" n.nid (node_name n.high));
        go n.low;
        go n.high
      end
  in
  go f;
  Buffer.add_string buf "}\n";
  Buffer.contents buf
