(* Reduced ordered BDDs with hash-consing and memoised operations.

   Invariants maintained by [mk]:
   - ordering: on every path from the root, variable indices strictly
     increase;
   - reduction: no node has [low == high], and no two distinct nodes have
     the same (var, low, high) triple (unique table).

   Under these invariants structural identity is semantic equivalence,
   so [equal] is constant-time and operation caches can be keyed by node
   ids. *)

type t =
  | False
  | True
  | Node of node

and node = { nid : int; var : int; low : t; high : t }

type man = {
  unique : (int * int * int, t) Hashtbl.t;
  mutable next_id : int;
  ite_cache : (int * int * int, t) Hashtbl.t;
  exists_cache : (int * int, t) Hashtbl.t;
  forall_cache : (int * int, t) Hashtbl.t;
  relprod_cache : (int * int * int, t) Hashtbl.t;
  constrain_cache : (int * int, t) Hashtbl.t;
}

let create ?(unique_size = 20_011) ?(cache_size = 20_011) () =
  {
    unique = Hashtbl.create unique_size;
    next_id = 2;
    ite_cache = Hashtbl.create cache_size;
    exists_cache = Hashtbl.create cache_size;
    forall_cache = Hashtbl.create cache_size;
    relprod_cache = Hashtbl.create cache_size;
    constrain_cache = Hashtbl.create cache_size;
  }

let zero _ = False
let one _ = True

let id = function
  | False -> 0
  | True -> 1
  | Node n -> n.nid

let is_zero = function False -> true | True | Node _ -> false
let is_one = function True -> true | False | Node _ -> false
let equal a b = id a = id b
let compare a b = Stdlib.compare (id a) (id b)
let hash b = id b

let topvar = function
  | Node n -> n.var
  | False | True -> invalid_arg "Bdd.topvar: constant"

let low = function
  | Node n -> n.low
  | False | True -> invalid_arg "Bdd.low: constant"

let high = function
  | Node n -> n.high
  | False | True -> invalid_arg "Bdd.high: constant"

(* The only node constructor: reduces and hash-conses. *)
let mk m v lo hi =
  if equal lo hi then lo
  else
    let key = (v, id lo, id hi) in
    match Hashtbl.find_opt m.unique key with
    | Some n -> n
    | None ->
      let n = Node { nid = m.next_id; var = v; low = lo; high = hi } in
      m.next_id <- m.next_id + 1;
      Hashtbl.add m.unique key n;
      n

let var m v =
  if v < 0 then invalid_arg "Bdd.var: negative variable";
  mk m v False True

let nvar m v =
  if v < 0 then invalid_arg "Bdd.nvar: negative variable";
  mk m v True False

(* Root variable treating constants as deeper than everything. *)
let level = function
  | False | True -> max_int
  | Node n -> n.var

(* Cofactors with respect to a variable at or above the root. *)
let cofactors f v =
  match f with
  | Node n when n.var = v -> (n.low, n.high)
  | False | True | Node _ -> (f, f)

let rec ite m f g h =
  match f with
  | True -> g
  | False -> h
  | Node _ ->
    if equal g h then g
    else if is_one g && is_zero h then f
    else
      let key = (id f, id g, id h) in
      match Hashtbl.find_opt m.ite_cache key with
      | Some r -> r
      | None ->
        let v = min (level f) (min (level g) (level h)) in
        let f0, f1 = cofactors f v
        and g0, g1 = cofactors g v
        and h0, h1 = cofactors h v in
        let lo = ite m f0 g0 h0 and hi = ite m f1 g1 h1 in
        let r = mk m v lo hi in
        Hashtbl.add m.ite_cache key r;
        r

let not_ m f = ite m f False True
let and_ m f g = ite m f g False
let or_ m f g = ite m f True g
let xor m f g = ite m f (not_ m g) g
let imp m f g = ite m f g True
let iff m f g = ite m f g (not_ m g)
let diff m f g = ite m f (not_ m g) False
let conj m fs = List.fold_left (and_ m) True fs
let disj m fs = List.fold_left (or_ m) False fs
let subset m f g = is_zero (diff m f g)

let rec restrict m f v b =
  match f with
  | False | True -> f
  | Node n ->
    if n.var > v then f
    else if n.var = v then if b then n.high else n.low
    else mk m n.var (restrict m n.low v b) (restrict m n.high v b)

let cube m vs =
  let sorted = List.sort_uniq Stdlib.compare vs in
  List.fold_right (fun v acc -> mk m v False acc) sorted True

(* Skip cube variables above the level [v] (they do not occur in the
   operand, so quantifying them is a no-op for that branch). *)
let rec cube_from c v =
  match c with
  | Node n when n.var < v -> cube_from n.high v
  | False | True | Node _ -> c

let rec exists m c f =
  match (f, c) with
  | (False | True), _ -> f
  | _, (True | False) -> f
  | Node nf, Node _ -> (
    let c = cube_from c nf.var in
    match c with
    | True | False -> f
    | Node nc ->
      let key = (id f, id c) in
      (match Hashtbl.find_opt m.exists_cache key with
      | Some r -> r
      | None ->
        let r =
          if nf.var = nc.var then
            or_ m (exists m nc.high nf.low) (exists m nc.high nf.high)
          else mk m nf.var (exists m c nf.low) (exists m c nf.high)
        in
        Hashtbl.add m.exists_cache key r;
        r))

let rec forall m c f =
  match (f, c) with
  | (False | True), _ -> f
  | _, (True | False) -> f
  | Node nf, Node _ -> (
    let c = cube_from c nf.var in
    match c with
    | True | False -> f
    | Node nc ->
      let key = (id f, id c) in
      (match Hashtbl.find_opt m.forall_cache key with
      | Some r -> r
      | None ->
        let r =
          if nf.var = nc.var then
            and_ m (forall m nc.high nf.low) (forall m nc.high nf.high)
          else mk m nf.var (forall m c nf.low) (forall m c nf.high)
        in
        Hashtbl.add m.forall_cache key r;
        r))

(* Relational product: exists c (f /\ g) in a single recursion, the
   workhorse of image computation. *)
let rec and_exists m c f g =
  match (f, g) with
  | False, _ | _, False -> False
  | True, True -> True
  | _, _ -> (
    match c with
    | True | False -> and_ m f g
    | Node _ -> (
      let v = min (level f) (level g) in
      let c = cube_from c v in
      match c with
      | True | False -> and_ m f g
      | Node nc ->
        (* Normalise the cache key: /\ is commutative. *)
        let i, j = if id f <= id g then (id f, id g) else (id g, id f) in
        let key = (i, j, id c) in
        (match Hashtbl.find_opt m.relprod_cache key with
        | Some r -> r
        | None ->
          let f0, f1 = cofactors f v and g0, g1 = cofactors g v in
          let r =
            if nc.var = v then
              or_ m (and_exists m nc.high f0 g0) (and_exists m nc.high f1 g1)
            else mk m v (and_exists m c f0 g0) (and_exists m c f1 g1)
          in
          Hashtbl.add m.relprod_cache key r;
          r)))

(* Generalized cofactor (Coudert-Madre "constrain"): a function that
   agrees with [f] on [c] and may take any value outside it, chosen so
   the result is often much smaller than [f].  Key property:
   [c /\ constrain f c = c /\ f]. *)
let rec constrain m f c =
  match c with
  | False -> invalid_arg "Bdd.constrain: care set is empty"
  | True -> f
  | Node _ -> (
    match f with
    | False | True -> f
    | Node _ ->
      if equal f c then True
      else
        let key = (id f, id c) in
        (match Hashtbl.find_opt m.constrain_cache key with
        | Some r -> r
        | None ->
          let v = min (level f) (level c) in
          let f0, f1 = cofactors f v and c0, c1 = cofactors c v in
          let r =
            if is_zero c1 then constrain m f0 c0
            else if is_zero c0 then constrain m f1 c1
            else mk m v (constrain m f0 c0) (constrain m f1 c1)
          in
          Hashtbl.add m.constrain_cache key r;
          r))

let rename m f perm =
  (* Rebuild bottom-up through ITE so that non-monotone permutations are
     handled correctly; memoised per call. *)
  let memo = Hashtbl.create 1024 in
  let rec go f =
    match f with
    | False | True -> f
    | Node n -> (
      match Hashtbl.find_opt memo n.nid with
      | Some r -> r
      | None ->
        let v' = perm n.var in
        if v' < 0 then invalid_arg "Bdd.rename: negative target variable";
        let r = ite m (var m v') (go n.high) (go n.low) in
        Hashtbl.add memo n.nid r;
        r)
  in
  go f

let support f =
  let seen = Hashtbl.create 64 in
  let vars = Hashtbl.create 64 in
  let rec go = function
    | False | True -> ()
    | Node n ->
      if not (Hashtbl.mem seen n.nid) then begin
        Hashtbl.add seen n.nid ();
        Hashtbl.replace vars n.var ();
        go n.low;
        go n.high
      end
  in
  go f;
  Hashtbl.fold (fun v () acc -> v :: acc) vars []
  |> List.sort Stdlib.compare

let size f =
  let seen = Hashtbl.create 64 in
  let rec go = function
    | False | True -> ()
    | Node n ->
      if not (Hashtbl.mem seen n.nid) then begin
        Hashtbl.add seen n.nid ();
        go n.low;
        go n.high
      end
  in
  go f;
  Hashtbl.length seen

let rec eval f env =
  match f with
  | False -> false
  | True -> true
  | Node n -> if env n.var then eval n.high env else eval n.low env

let sat_count f n =
  (* Weighted count: a node at variable v counts assignments over the
     variables v..n-1; crossing a gap of k levels multiplies by 2^k. *)
  let memo = Hashtbl.create 256 in
  let rec go f =
    match f with
    | False -> 0.0
    | True -> 1.0
    | Node nd -> (
      match Hashtbl.find_opt memo nd.nid with
      | Some c -> c
      | None ->
        let weight branch =
          let sub = go branch in
          let lvl = level branch in
          let gap = (if lvl = max_int then n else lvl) - nd.var - 1 in
          sub *. Float.pow 2.0 (float_of_int gap)
        in
        let c = weight nd.low +. weight nd.high in
        Hashtbl.add memo nd.nid c;
        c)
  in
  if List.exists (fun v -> v >= n) (support f) then
    invalid_arg "Bdd.sat_count: support exceeds variable universe";
  let top_gap = min (level f) n in
  go f *. Float.pow 2.0 (float_of_int top_gap)

let any_sat f =
  let rec go acc = function
    | False -> raise Not_found
    | True -> List.rev acc
    | Node n -> (
      match n.low with
      | False -> go ((n.var, true) :: acc) n.high
      | True | Node _ -> go ((n.var, false) :: acc) n.low)
  in
  go [] f

let fold_sat f vars ~init ~f:k =
  let vars = Array.of_list vars in
  let nv = Array.length vars in
  let pos = Hashtbl.create (2 * nv) in
  Array.iteri (fun i v -> Hashtbl.replace pos v i) vars;
  let assign = Array.make nv false in
  (* Walk variables in index order; the diagram's support is a subset of
     [vars], so at step i the residual diagram's root is >= vars.(i). *)
  let rec go acc i f =
    match f with
    | False -> acc
    | True | Node _ ->
      if i = nv then (match f with True -> k acc assign | False | Node _ -> acc)
      else
        let v = vars.(i) in
        let f0, f1 =
          match f with
          | Node n when n.var = v -> (n.low, n.high)
          | False | True | Node _ -> (f, f)
        in
        assign.(i) <- false;
        let acc = go acc (i + 1) f0 in
        assign.(i) <- true;
        let acc = go acc (i + 1) f1 in
        assign.(i) <- false;
        acc
  in
  List.iter
    (fun v ->
      if not (Hashtbl.mem pos v) then
        invalid_arg "Bdd.fold_sat: support not contained in vars")
    (support f);
  go init 0 f

let count_nodes m = m.next_id - 2

let clear_caches m =
  Hashtbl.reset m.ite_cache;
  Hashtbl.reset m.constrain_cache;
  Hashtbl.reset m.exists_cache;
  Hashtbl.reset m.forall_cache;
  Hashtbl.reset m.relprod_cache

let pp ppf f =
  match f with
  | False -> Format.fprintf ppf "false"
  | True -> Format.fprintf ppf "true"
  | Node n ->
    Format.fprintf ppf "<bdd #%d root=v%d nodes=%d>" n.nid n.var (size f)

let to_dot ?(name = fun v -> Printf.sprintf "v%d" v) f =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "digraph bdd {\n";
  Buffer.add_string buf "  node [shape=circle];\n";
  Buffer.add_string buf "  f0 [label=\"0\", shape=box];\n";
  Buffer.add_string buf "  f1 [label=\"1\", shape=box];\n";
  let seen = Hashtbl.create 64 in
  let node_name = function
    | False -> "f0"
    | True -> "f1"
    | Node n -> Printf.sprintf "n%d" n.nid
  in
  let rec go = function
    | False | True -> ()
    | Node n ->
      if not (Hashtbl.mem seen n.nid) then begin
        Hashtbl.add seen n.nid ();
        Buffer.add_string buf
          (Printf.sprintf "  n%d [label=\"%s\"];\n" n.nid (name n.var));
        Buffer.add_string buf
          (Printf.sprintf "  n%d -> %s [style=dashed];\n" n.nid
             (node_name n.low));
        Buffer.add_string buf
          (Printf.sprintf "  n%d -> %s;\n" n.nid (node_name n.high));
        go n.low;
        go n.high
      end
  in
  go f;
  Buffer.add_string buf "}\n";
  Buffer.contents buf
