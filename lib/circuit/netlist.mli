(** Speed-independent asynchronous circuits at the gate level
    (the Section 6 case-study substrate).

    A circuit is a set of boolean signals, each driven by a rule giving
    the conditions under which it rises and falls.  Execution is
    interleaved: at each step one {e enabled} signal fires (an enabled
    quiescent circuit stutters), which models arbitrary gate delays —
    "each gate can take an arbitrarily long time to respond to its
    inputs".  Gates carry a weak-fairness constraint ("the gate is
    stable infinitely often"), so that along fair paths every gate
    eventually responds; environment rules carry none (the user may
    legitimately never request). *)

type signal = string

(** Boolean conditions over signals. *)
type cond =
  | Sig of signal
  | Const of bool
  | Not of cond
  | And of cond * cond
  | Or of cond * cond

val conj : cond list -> cond
val disj : cond list -> cond

type rule = {
  rule_name : string;
  output : signal;
  rise : cond;  (** may fire high when low and this holds *)
  fall : cond;  (** may fire low when high and this holds *)
  fair : bool;  (** add the weak-fairness constraint for this rule *)
}

val gate : name:string -> output:signal -> cond -> rule
(** A combinational gate: the output rises when the function holds and
    falls when it does not (fair). *)

val c_element : name:string -> output:signal -> cond -> cond -> rule
(** A Muller C-element: rises when both inputs hold, falls when
    neither does (fair). *)

val env : name:string -> output:signal -> rise:cond -> fall:cond -> rule
(** An environment driver: fires nondeterministically when its
    conditions hold; not fair. *)

val me_element :
  name:string -> requests:signal list -> grants:signal list -> rule list
(** A mutual-exclusion element: grant [g_i] may rise when [r_i] holds
    and no grant is currently high; it falls when [r_i] is withdrawn.
    At most one grant is ever high (an invariant the compiled model
    maintains by construction).  [requests] and [grants] must have
    equal non-zero length. *)

type t = {
  rules : rule list;
  init_high : signal list;  (** signals initially 1 (others start 0) *)
}

exception Bad_netlist of string

val signals : t -> signal list
(** Every signal mentioned, sorted; includes undriven (constant)
    signals. *)

val compile : t -> Kripke.t
(** Symbolic model of the circuit: one boolean variable per signal
    (all labelled), interleaved firing semantics with a quiescent
    stutter loop, one fairness constraint per fair rule.  Raises
    {!Bad_netlist} when two rules drive one signal. *)

val enabled : Kripke.t -> t -> rule -> Bdd.t
(** The states in which the rule's output is unstable (may fire). *)
