(** Gate-level speed-independent asynchronous circuits ({!Netlist}) and
    the reconstructed Seitz {!Arbiter} of the Section 6 case study. *)

module Netlist = Netlist
module Arbiter = Arbiter
