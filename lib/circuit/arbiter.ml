let sig_ fmt i = Printf.sprintf fmt i

let netlist n =
  if n < 2 then invalid_arg "Arbiter.netlist: need at least two users";
  let users = List.init n (fun i -> i + 1) in
  let ur = sig_ "ur%d" and tr = sig_ "tr%d" and g = sig_ "g%d" in
  let ta = sig_ "ta%d" and ua = sig_ "ua%d" in
  let open Netlist in
  let env_rules =
    List.map
      (fun i ->
        env ~name:(sig_ "user%d" i) ~output:(ur i)
          ~rise:(Not (Sig (ua i)))
          ~fall:(Sig (ua i)))
      users
  in
  let request_gates =
    List.map
      (fun i ->
        gate ~name:(sig_ "AND_req%d" i) ~output:(tr i)
          (And (Sig (ur i), Not (Sig (ua i)))))
      users
  in
  let me_rules =
    me_element ~name:"ME"
      ~requests:(List.map tr users)
      ~grants:(List.map g users)
  in
  let or_gate =
    gate ~name:"OR_meo" ~output:"meo" (disj (List.map (fun i -> Sig (g i)) users))
  in
  let ack_gates =
    List.map
      (fun i ->
        gate ~name:(sig_ "AND_ack%d" i) ~output:(ta i)
          (And (Sig (g i), Sig "meo")))
      users
  in
  let user_acks =
    List.map
      (fun i -> gate ~name:(sig_ "BUF_ua%d" i) ~output:(ua i) (Sig (ta i)))
      users
  in
  {
    rules =
      env_rules @ request_gates @ me_rules @ (or_gate :: ack_gates)
      @ user_acks;
    init_high = [];
  }

let model n = Netlist.compile (netlist n)

let liveness_spec _n = Ctl.Parse.formula "AG (tr1 -> AF ta1)"

let specs n =
  let users = List.init n (fun i -> i + 1) in
  let pairs =
    List.concat_map
      (fun i -> List.filter_map (fun j -> if i < j then Some (i, j) else None) users)
      users
  in
  let mutex prefix =
    List.map
      (fun (i, j) ->
        let text = Printf.sprintf "AG !(%s%d & %s%d)" prefix i prefix j in
        (text, Ctl.Parse.formula text))
      pairs
  in
  let liveness =
    List.map
      (fun i ->
        let text = Printf.sprintf "AG (tr%d -> AF ta%d)" i i in
        (text, Ctl.Parse.formula text))
      users
  in
  mutex "g" @ mutex "ua" @ liveness
