(** The asynchronous arbiter case study (Section 6, Figure 3).

    A reconstruction of the Seitz-style speed-independent arbiter: user
    [i] raises a request [ur_i]; an AND gate forwards it as [tr_i]; a
    mutual-exclusion element grants [g_i] to at most one requester; the
    grant propagates through the OR gate [meo] and an AND gate to the
    acknowledgement [ta_i], buffered to the user as [ua_i].  Gate
    fairness ensures every gate eventually responds; the environment is
    unconstrained (a user may request, hold, or stay idle forever).

    The dimensions (exact netlist of Dill's thesis) are not public in
    the paper, so the circuit here is built to exhibit the same
    qualitative behaviour the case study reports: grant mutual
    exclusion holds, while the liveness specification
    [AG (tr1 -> AF ta1)] fails with a fair lasso counterexample. *)

val netlist : int -> Netlist.t
(** [netlist n] — the arbiter with [n >= 2] users.  Signals (per user
    [i], 1-based): [ur<i>], [tr<i>], [g<i>], [ta<i>], [ua<i>]; plus the
    shared [meo].  Raises [Invalid_argument] when [n < 2]. *)

val model : int -> Kripke.t
(** Compiled symbolic model of {!netlist}. *)

val specs : int -> (string * Ctl.t) list
(** The specifications checked in the case study, with source-like
    names: grant mutual exclusion (true), acknowledgement mutual
    exclusion, and the per-user liveness properties
    [AG (tr<i> -> AF ta<i>)] (false — the bug). *)

val liveness_spec : int -> Ctl.t
(** [AG (tr1 -> AF ta1)], the specification whose counterexample the
    paper reports (78 states, cycle of length 30 on their netlist). *)
