type signal = string

type cond =
  | Sig of signal
  | Const of bool
  | Not of cond
  | And of cond * cond
  | Or of cond * cond

let conj = function
  | [] -> Const true
  | c :: rest -> List.fold_left (fun acc d -> And (acc, d)) c rest

let disj = function
  | [] -> Const false
  | c :: rest -> List.fold_left (fun acc d -> Or (acc, d)) c rest

type rule = {
  rule_name : string;
  output : signal;
  rise : cond;
  fall : cond;
  fair : bool;
}

let gate ~name ~output f =
  { rule_name = name; output; rise = f; fall = Not f; fair = true }

let c_element ~name ~output a b =
  { rule_name = name; output; rise = And (a, b); fall = And (Not a, Not b); fair = true }

let env ~name ~output ~rise ~fall =
  { rule_name = name; output; rise; fall; fair = false }

let me_element ~name ~requests ~grants =
  if List.length requests <> List.length grants || requests = [] then
    invalid_arg "Netlist.me_element: requests/grants mismatch";
  let no_grant = conj (List.map (fun g -> Not (Sig g)) grants) in
  List.map2
    (fun r g ->
      {
        rule_name = Printf.sprintf "%s.%s" name g;
        output = g;
        rise = And (Sig r, no_grant);
        fall = Not (Sig r);
        fair = true;
      })
    requests grants

type t = {
  rules : rule list;
  init_high : signal list;
}

exception Bad_netlist of string

let rec cond_signals = function
  | Sig s -> [ s ]
  | Const _ -> []
  | Not c -> cond_signals c
  | And (a, b) | Or (a, b) -> cond_signals a @ cond_signals b

let signals t =
  List.concat_map
    (fun r -> (r.output :: cond_signals r.rise) @ cond_signals r.fall)
    t.rules
  @ t.init_high
  |> List.sort_uniq String.compare

let check t =
  let seen = Hashtbl.create 16 in
  List.iter
    (fun r ->
      match Hashtbl.find_opt seen r.output with
      | Some other ->
        raise
          (Bad_netlist
             (Printf.sprintf "signal %s driven by both %s and %s" r.output
                other r.rule_name))
      | None -> Hashtbl.replace seen r.output r.rule_name)
    t.rules

let compile t =
  check t;
  let b = Kripke.Builder.create () in
  let bman = Kripke.Builder.man b in
  let vars = Hashtbl.create 16 in
  List.iter
    (fun s -> Hashtbl.replace vars s (Kripke.Builder.bool_var b s))
    (signals t);
  let var s = Hashtbl.find vars s in
  let rec denote = function
    | Sig s -> Kripke.Builder.v b (var s)
    | Const true -> Bdd.one bman
    | Const false -> Bdd.zero bman
    | Not c -> Bdd.not_ bman (denote c)
    | And (c, d) -> Bdd.and_ bman (denote c) (denote d)
    | Or (c, d) -> Bdd.or_ bman (denote c) (denote d)
  in
  let enabled_bdd r =
    let out = Kripke.Builder.v b (var r.output) in
    Bdd.or_ bman
      (Bdd.and_ bman (Bdd.not_ bman out) (denote r.rise))
      (Bdd.and_ bman out (denote r.fall))
  in
  (* Firing: toggle the output, freeze everything else. *)
  List.iter
    (fun r ->
      let out = var r.output in
      let toggles =
        Bdd.iff bman
          (Kripke.Builder.v' b out)
          (Bdd.not_ bman (Kripke.Builder.v b out))
      in
      Kripke.Builder.add_trans_case b
        (Bdd.conj bman
           [ enabled_bdd r; toggles; Kripke.Builder.keep_all_but b [ out ] ]))
    t.rules;
  (* Quiescent states stutter. *)
  let any_enabled = Bdd.disj bman (List.map enabled_bdd t.rules) in
  Kripke.Builder.add_trans_case b
    (Bdd.and_ bman
       (Bdd.not_ bman any_enabled)
       (Kripke.Builder.keep_all_but b []));
  (* Initial values. *)
  List.iter
    (fun s ->
      let lit = Kripke.Builder.v b (var s) in
      if List.mem s t.init_high then Kripke.Builder.add_init b lit
      else Kripke.Builder.add_init b (Bdd.not_ bman lit))
    (signals t);
  (* Weak fairness: each fair rule is stable infinitely often. *)
  List.iter
    (fun r ->
      if r.fair then
        Kripke.Builder.add_fairness b (Bdd.not_ bman (enabled_bdd r)))
    t.rules;
  Kripke.Builder.label_all_bools b;
  Kripke.Builder.build b

let enabled (m : Kripke.t) t r =
  ignore t;
  let bman = m.Kripke.man in
  let lit s =
    let v = Kripke.var_by_name m s in
    Kripke.cur_bit m v.Kripke.bits.(0)
  in
  let rec denote = function
    | Sig s -> lit s
    | Const true -> Bdd.one bman
    | Const false -> Bdd.zero bman
    | Not c -> Bdd.not_ bman (denote c)
    | And (c, d) -> Bdd.and_ bman (denote c) (denote d)
    | Or (c, d) -> Bdd.or_ bman (denote c) (denote d)
  in
  let out = lit r.output in
  Bdd.or_ bman
    (Bdd.and_ bman (Bdd.not_ bman out) (denote r.rise))
    (Bdd.and_ bman out (denote r.fall))
