(** The restricted CTL* machinery of Section 7: {!Syntax} for CTL*
    state/path formulas (re-exported) and {!Gffg} for checking and
    witnessing [E /\ (GF p \/ FG q)] formulas. *)

include Syntax
module Gffg = Gffg
