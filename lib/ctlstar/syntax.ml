type state_formula =
  | True
  | False
  | Atom of string
  | Pred of Bdd.t
  | Not of state_formula
  | And of state_formula * state_formula
  | Or of state_formula * state_formula
  | E of path_formula
  | A of path_formula

and path_formula =
  | State of state_formula
  | PNot of path_formula
  | PAnd of path_formula * path_formula
  | POr of path_formula * path_formula
  | X of path_formula
  | F of path_formula
  | G of path_formula
  | U of path_formula * path_formula

let gf f = G (F (State f))
let fg f = F (G (State f))

let rec pp_state ppf = function
  | True -> Format.pp_print_string ppf "true"
  | False -> Format.pp_print_string ppf "false"
  | Atom s -> Format.pp_print_string ppf s
  | Pred b -> Format.fprintf ppf "{%a}" Bdd.pp b
  | Not f -> Format.fprintf ppf "!(%a)" pp_state f
  | And (a, b) -> Format.fprintf ppf "(%a & %a)" pp_state a pp_state b
  | Or (a, b) -> Format.fprintf ppf "(%a | %a)" pp_state a pp_state b
  | E p -> Format.fprintf ppf "E (%a)" pp_path p
  | A p -> Format.fprintf ppf "A (%a)" pp_path p

and pp_path ppf = function
  | State f -> pp_state ppf f
  | PNot p -> Format.fprintf ppf "!(%a)" pp_path p
  | PAnd (a, b) -> Format.fprintf ppf "(%a & %a)" pp_path a pp_path b
  | POr (a, b) -> Format.fprintf ppf "(%a | %a)" pp_path a pp_path b
  | X p -> Format.fprintf ppf "X (%a)" pp_path p
  | F p -> Format.fprintf ppf "F (%a)" pp_path p
  | G p -> Format.fprintf ppf "G (%a)" pp_path p
  | U (a, b) -> Format.fprintf ppf "[%a U %a]" pp_path a pp_path b

let to_string f = Format.asprintf "%a" pp_state f

type conjunct = {
  gf_part : state_formula option;
  fg_part : state_formula option;
}

exception Unsupported of string

let unsupported p =
  raise
    (Unsupported (Format.asprintf "not in the GF/FG class: %a" pp_path p))

(* A leaf is GF s, FG s, or a disjunction of the two. *)
let rec leaf = function
  | G (F (State s)) -> { gf_part = Some s; fg_part = None }
  | F (G (State s)) -> { gf_part = None; fg_part = Some s }
  | POr (a, b) -> (
    let la = leaf a and lb = leaf b in
    match (la, lb) with
    | { gf_part = Some p; fg_part = None }, { gf_part = None; fg_part = Some q }
    | { gf_part = None; fg_part = Some q }, { gf_part = Some p; fg_part = None }
      ->
      { gf_part = Some p; fg_part = Some q }
    | _, _ -> unsupported (POr (a, b)))
  | p -> unsupported p

(* Conjunction of leaves. *)
let rec conjuncts = function
  | PAnd (a, b) -> conjuncts a @ conjuncts b
  | p -> [ leaf p ]

(* Top-level disjunction of conjunctions. *)
let rec classify = function
  | POr (a, b) -> (
    (* A disjunction is either a leaf (GF \/ FG) or a split between
       whole disjuncts; try the leaf reading first. *)
    match leaf (POr (a, b)) with
    | c -> [ [ c ] ]
    | exception Unsupported _ -> classify a @ classify b)
  | p -> [ conjuncts p ]
