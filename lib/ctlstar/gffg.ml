type conjunct = {
  gf : Bdd.t;
  fg : Bdd.t;
}

type resolution = Took_gf | Took_fg

(* gfp Y [ /\_j ((q_j /\ EX Y) \/ EX E[Y U (p_j /\ Y)]) ] *)
let core ?limits (m : Kripke.t) cs =
  let bman = m.Kripke.man in
  let step y =
    List.fold_left
      (fun acc c ->
        let fg_term = Bdd.and_ bman c.fg (Ctl.Check.ex m y) in
        let gf_term =
          Ctl.Check.ex m (Ctl.Check.eu ?limits m y (Bdd.and_ bman c.gf y))
        in
        Bdd.and_ bman acc (Bdd.or_ bman fg_term gf_term))
      m.Kripke.space cs
  in
  let rec go y =
    (match limits with
    | Some l -> Bdd.Limits.step bman l
    | None -> ());
    let y' = Bdd.and_ bman y (step y) in
    if Bdd.equal y y' then y else go y'
  in
  go m.Kripke.space

let check ?limits m cs =
  Ctl.Check.eu ?limits m m.Kripke.space (core ?limits m cs)

(* Push path negations down to state formulas so that classification
   sees the GF/FG shapes. *)
let rec push_path = function
  | Syntax.State s -> Syntax.State s
  | Syntax.PAnd (a, b) -> Syntax.PAnd (push_path a, push_path b)
  | Syntax.POr (a, b) -> Syntax.POr (push_path a, push_path b)
  | Syntax.X p -> Syntax.X (push_path p)
  | Syntax.F p -> Syntax.F (push_path p)
  | Syntax.G p -> Syntax.G (push_path p)
  | Syntax.U (a, b) -> Syntax.U (push_path a, push_path b)
  | Syntax.PNot p -> neg_path p

and neg_path = function
  | Syntax.State s -> Syntax.State (Syntax.Not s)
  | Syntax.PNot p -> push_path p
  | Syntax.PAnd (a, b) -> Syntax.POr (neg_path a, neg_path b)
  | Syntax.POr (a, b) -> Syntax.PAnd (neg_path a, neg_path b)
  | Syntax.X p -> Syntax.X (neg_path p)
  | Syntax.F p -> Syntax.G (neg_path p)
  | Syntax.G p -> Syntax.F (neg_path p)
  | Syntax.U _ as p ->
    raise
      (Syntax.Unsupported
         (Format.asprintf "cannot negate an until: %a" Syntax.pp_path p))

let rec check_state ?limits (m : Kripke.t) formula =
  let bman = m.Kripke.man in
  let space = m.Kripke.space in
  match formula with
  | Syntax.True -> space
  | Syntax.False -> Bdd.zero bman
  | Syntax.Atom name -> (
    match Kripke.label m name with
    | set -> Bdd.and_ bman set space
    | exception Not_found -> raise (Ctl.Check.Unknown_atom name))
  | Syntax.Pred set -> Bdd.and_ bman set space
  | Syntax.Not f -> Bdd.diff bman space (check_state ?limits m f)
  | Syntax.And (a, b) ->
    Bdd.and_ bman (check_state ?limits m a) (check_state ?limits m b)
  | Syntax.Or (a, b) ->
    Bdd.or_ bman (check_state ?limits m a) (check_state ?limits m b)
  | Syntax.E p -> check_exists ?limits m p
  | Syntax.A p ->
    Bdd.diff bman space (check_exists ?limits m (Syntax.PNot p))

and check_exists ?limits m p =
  let bman = m.Kripke.man in
  let disjuncts = Syntax.classify (push_path p) in
  let eval_conjunct (c : Syntax.conjunct) =
    let eval_opt = function
      | None -> Bdd.zero bman
      | Some s -> check_state ?limits m s
    in
    { gf = eval_opt c.Syntax.gf_part; fg = eval_opt c.Syntax.fg_part }
  in
  Bdd.disj bman
    (List.map
       (fun cs -> check ?limits m (List.map eval_conjunct cs))
       disjuncts)

let holds ?limits m formula =
  Bdd.subset m.Kripke.man m.Kripke.init (check_state ?limits m formula)

(* ------------------------------------------------------------------ *)
(* Witnesses: resolve each disjunction, reduce to fair EG.             *)

let resolve ?limits m cs ~start =
  if not (Kripke.eval_in_state m (check ?limits m cs) start) then
    raise
      (Counterex.Witness.No_witness
         "CTL*: start state does not satisfy the formula");
  let bman = m.Kripke.man in
  let zero = Bdd.zero bman in
  let pure_fg c = { gf = zero; fg = c.fg } in
  let pure_gf c = { gf = c.gf; fg = zero } in
  let rec go resolved_rev pending =
    match pending with
    | [] -> List.rev resolved_rev
    | c :: rest ->
      let try_fg =
        (not (Bdd.is_zero c.fg))
        &&
        let candidate =
          List.rev_append
            (List.map snd resolved_rev)
            (pure_fg c :: rest)
        in
        Kripke.eval_in_state m (check ?limits m candidate) start
      in
      if try_fg then go ((Took_fg, pure_fg c) :: resolved_rev) rest
      else go ((Took_gf, pure_gf c) :: resolved_rev) rest
  in
  List.map fst (go [] cs)

let resolved_conjuncts ?limits m cs ~start =
  let choices = resolve ?limits m cs ~start in
  List.map2
    (fun choice c ->
      match choice with
      | Took_fg -> (choice, c.fg)
      | Took_gf -> (choice, c.gf))
    choices cs

let witness ?limits m cs ~start =
  let bman = m.Kripke.man in
  let resolved = resolved_conjuncts ?limits m cs ~start in
  let ps =
    List.filter_map
      (fun (choice, set) ->
        match choice with Took_gf -> Some set | Took_fg -> None)
      resolved
  in
  let qs =
    List.fold_left
      (fun acc (choice, set) ->
        match choice with
        | Took_fg -> Bdd.and_ bman acc set
        | Took_gf -> acc)
      m.Kripke.space resolved
  in
  let m' = Kripke.with_fairness m ps in
  let target = Ctl.Fair.eg ?limits m' qs in
  let prefix =
    Counterex.Witness.eu ?limits m ~f:m.Kripke.space ~g:target ~start
  in
  let anchor =
    match List.rev (Kripke.Trace.states prefix) with
    | st :: _ -> st
    | [] -> assert false
  in
  let lasso = Counterex.Witness.eg ?limits m' ~f:qs ~start:anchor in
  Kripke.Trace.append prefix lasso

let witness_ok m cs tr =
  Counterex.Validate.path_ok m tr = Ok ()
  && Kripke.Trace.is_lasso tr
  && List.for_all
       (fun c ->
         List.exists (Kripke.eval_in_state m c.gf) tr.Kripke.Trace.cycle
         || List.for_all (Kripke.eval_in_state m c.fg) tr.Kripke.Trace.cycle)
       cs
