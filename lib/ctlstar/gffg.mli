(** Checking and witnessing the restricted CTL* class
    [E /\_j (GF p_j \/ FG q_j)] (Section 7).

    Conjuncts are given as pairs of state sets; a missing disjunct is
    the empty set.  The satisfaction set is computed with the fixpoint
    characterisation of Emerson and Lei quoted in the paper:

    [E /\_j (GF p_j \/ FG q_j)
       = EF gfp Y [ /\_j ((q_j /\ EX Y) \/ EX E[Y U (p_j /\ Y)]) ]]

    and witnesses are built by resolving each disjunction — testing
    whether the [FG q_j] branch can be taken — until the formula
    becomes [E (FG (/\ q) /\ /\ GF p)], i.e. [EF EG (/\ q)] under the
    fairness constraints [{p}], whose witness Section 6 provides. *)

type conjunct = {
  gf : Bdd.t;  (** the set [p] of [GF p]; empty when absent *)
  fg : Bdd.t;  (** the set [q] of [FG q]; empty when absent *)
}

(** How each disjunction was resolved when building a witness. *)
type resolution = Took_gf | Took_fg

val core : ?limits:Bdd.Limits.t -> Kripke.t -> conjunct list -> Bdd.t
(** The inner greatest fixpoint [gfp Y ...] (states from which the
    tail of a satisfying path can start).  Every function below accepts
    [?limits]: fixpoint iterations charge steps against the budget
    (raising [Bdd.Limits.Exhausted] on a breach) without changing any
    result. *)

val check : ?limits:Bdd.Limits.t -> Kripke.t -> conjunct list -> Bdd.t
(** The satisfaction set [EF core]. *)

val check_state :
  ?limits:Bdd.Limits.t -> Kripke.t -> Syntax.state_formula -> Bdd.t
(** Evaluate a CTL* state formula whose path quantifiers are all in the
    restricted class ([E] directly; [A φ] via [!E !φ] only when [!φ]
    classifies).  Raises {!Syntax.Unsupported} outside the fragment and
    {!Ctl.Check.Unknown_atom} for unknown atoms. *)

val holds : ?limits:Bdd.Limits.t -> Kripke.t -> Syntax.state_formula -> bool
(** All initial states satisfy the formula. *)

val resolve :
  ?limits:Bdd.Limits.t ->
  Kripke.t -> conjunct list -> start:Kripke.state -> resolution list
(** The branch choice made for each conjunct when demonstrating the
    formula from [start] (which must satisfy {!check}; raises
    [Counterex.Witness.No_witness] otherwise).  Exposed for tests and
    for the experiment that counts checker invocations. *)

val witness :
  ?limits:Bdd.Limits.t ->
  Kripke.t -> conjunct list -> start:Kripke.state -> Kripke.Trace.t
(** A lasso from [start] demonstrating [E /\_j (GF p_j \/ FG q_j)]:
    on the cycle, every resolved [GF p] set is visited and every
    resolved [FG q] set contains all cycle states. *)

val witness_ok : Kripke.t -> conjunct list -> Kripke.Trace.t -> bool
(** Independent validation: the trace is a valid lasso of the model and
    its cycle satisfies every conjunct ([gf] hit at least once, or all
    cycle states inside [fg]). *)
