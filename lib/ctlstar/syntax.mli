(** CTL* formulas (Section 7).

    CTL* distinguishes state formulas (true in a state) from path
    formulas (true along a path).  Model checking the full logic is
    expensive; the checker in {!Gffg} handles the class the paper
    identifies as efficiently checkable,
    [E \/_i /\_j (GF p_ij \/ FG q_ij)], to which {!classify} reduces
    suitable formulas. *)

type state_formula =
  | True
  | False
  | Atom of string
  | Pred of Bdd.t
  | Not of state_formula
  | And of state_formula * state_formula
  | Or of state_formula * state_formula
  | E of path_formula  (** some path from here satisfies the body *)
  | A of path_formula  (** all paths from here satisfy the body *)

and path_formula =
  | State of state_formula  (** holds on a path iff at its first state *)
  | PNot of path_formula
  | PAnd of path_formula * path_formula
  | POr of path_formula * path_formula
  | X of path_formula
  | F of path_formula
  | G of path_formula
  | U of path_formula * path_formula

(** {1 Convenience} *)

val gf : state_formula -> path_formula
(** [GF f] — infinitely often. *)

val fg : state_formula -> path_formula
(** [FG f] — eventually always. *)

val pp_state : Format.formatter -> state_formula -> unit
val pp_path : Format.formatter -> path_formula -> unit
val to_string : state_formula -> string

(** {1 Classification} *)

type conjunct = {
  gf_part : state_formula option;  (** the [GF p] disjunct, if present *)
  fg_part : state_formula option;  (** the [FG q] disjunct, if present *)
}
(** One conjunct [(GF p \/ FG q)]; a missing disjunct behaves as
    [false]. *)

exception Unsupported of string
(** The formula is outside the efficiently checkable class. *)

val classify : path_formula -> conjunct list list
(** Rewrite the body of an [E] quantifier into the paper's normal form
    [\/_i /\_j (GF p_ij \/ FG q_ij)] — one conjunct list per disjunct.
    Accepts any nesting of [POr] above [PAnd] above [GF]/[FG]-shaped
    leaves (written as [G (F _)], [F (G _)], or their disjunction);
    a bare state formula [s] is accepted as [FG s /\ GF s]'s degenerate
    form is *not* assumed — it is rejected ({!Unsupported}) because
    [s] at the first state only is not expressible in the class.

    Raises {!Unsupported} otherwise. *)
