(** Symbolic Kripke structures: the model representation ({!Model},
    re-exported here), the imperative {!Builder}, and execution
    {!Trace}s. *)

include Model
module Builder = Builder
module Trace = Trace
