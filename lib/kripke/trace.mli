(** Execution traces: witnesses and counterexamples.

    A trace is a finite prefix optionally followed by a repeating cycle
    (the "finite witness" of Section 6: an infinite path presented as
    prefix + loop).  States are concrete bit vectors of the model they
    were produced from. *)

type t = {
  prefix : Model.state list;  (** never empty for a produced trace *)
  cycle : Model.state list;
      (** empty for finite witnesses (e.g. of [EU]); otherwise the loop
          body, whose last state has the first cycle state as a
          successor *)
}

val finite : Model.state list -> t
(** A trace with no loop. *)

val lasso : prefix:Model.state list -> cycle:Model.state list -> t

val length : t -> int
(** Total number of states ([prefix] + [cycle]) — the "length of a
    finite witness" of Section 6. *)

val states : t -> Model.state list
(** Prefix followed by cycle. *)

val nth : t -> int -> Model.state
(** State at position [i] of the infinite unrolling: prefix states
    first, then the cycle repeated forever.  For finite traces the last
    state repeats (self-loop view).  Raises [Invalid_argument] on an
    empty trace. *)

val is_lasso : t -> bool

val append : t -> t -> t
(** [append a b] concatenates a finite trace [a] (its cycle must be
    empty) with [b]; the last state of [a] must equal the first state
    of [b] and is not duplicated.  Raises [Invalid_argument]
    otherwise. *)

val pp : Model.t -> Format.formatter -> t -> unit
(** SMV-style rendering: numbered states, values printed only when they
    change, "-- loop starts here --" before the cycle. *)
