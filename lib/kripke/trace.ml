type t = {
  prefix : Model.state list;
  cycle : Model.state list;
}

let finite states = { prefix = states; cycle = [] }
let lasso ~prefix ~cycle = { prefix; cycle }
let length tr = List.length tr.prefix + List.length tr.cycle
let states tr = tr.prefix @ tr.cycle
let is_lasso tr = tr.cycle <> []

let nth tr i =
  let np = List.length tr.prefix in
  if i < np then List.nth tr.prefix i
  else
    match tr.cycle with
    | [] ->
      if tr.prefix = [] then invalid_arg "Trace.nth: empty trace"
      else List.nth tr.prefix (np - 1)
    | cycle -> List.nth cycle ((i - np) mod List.length cycle)

let append a b =
  if a.cycle <> [] then invalid_arg "Trace.append: first trace has a cycle";
  match (List.rev a.prefix, b.prefix) with
  | [], _ -> b
  | _, [] -> invalid_arg "Trace.append: second trace is empty"
  | last :: _, first :: rest ->
    if last <> first then
      invalid_arg "Trace.append: traces do not share the junction state";
    { prefix = a.prefix @ rest; cycle = b.cycle }

let pp m ppf tr =
  let count = ref 0 in
  let prev = ref None in
  let pp_one loop_start st =
    incr count;
    if loop_start then Format.fprintf ppf "-- loop starts here --@,";
    Format.fprintf ppf "state 1.%d:@," !count;
    Format.fprintf ppf "@[<v 2>  ";
    (match !prev with
    | None -> Model.pp_state m ppf st
    | Some p -> Model.pp_state_diff m ~prev:p ppf st);
    Format.fprintf ppf "@]@,";
    prev := Some st
  in
  Format.fprintf ppf "@[<v>";
  List.iter (pp_one false) tr.prefix;
  List.iteri (fun i st -> pp_one (i = 0) st) tr.cycle;
  Format.fprintf ppf "@]"
