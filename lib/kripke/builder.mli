(** Imperative construction of symbolic Kripke structures.

    A builder owns a BDD manager, allocates bits for declared variables,
    and accumulates init / transition conjuncts, fairness constraints
    and labelled atomic propositions before sealing them into a
    {!Model.t}.

    The transition relation defaults to [true] (chaos); callers either
    conjoin full-relation constraints with {!add_trans} or use the
    per-variable {!assign_next} and then {!unchanged}/{!keep_all_but}
    for frame conditions. *)

type b

val create : ?man:Bdd.man -> unit -> b

val man : b -> Bdd.man

val bool_var : b -> string -> Model.var
(** Declare a boolean variable.  Raises [Invalid_argument] on duplicate
    names. *)

val enum_var : b -> string -> string list -> Model.var
(** Declare an enumerated variable with the given (non-empty, distinct)
    constants. *)

val range_var : b -> string -> int -> int -> Model.var
(** [range_var b name lo hi] declares an integer variable over
    [lo..hi]; requires [lo <= hi]. *)

val seed_order : b -> Model.var list -> unit
(** [seed_order b vars] installs a static BDD-variable order: the bits
    of [vars] in the given sequence, each state bit contributing its
    interleaved (current, next) pair — so related model variables end
    up adjacent regardless of declaration order.  [vars] must be a
    permutation of the declared variables ([Invalid_argument]
    otherwise).  Call after all declarations and before any constraint
    is added: on the still-empty manager installation is free. *)

(** {1 Predicates}

    Functions suffixed with ['] ({!is'}, {!v'}, ...) talk about the
    next-state copy; unsuffixed ones about the current copy. *)

val v : b -> Model.var -> Bdd.t
(** A boolean variable as a predicate (current copy).  Raises
    [Invalid_argument] for non-boolean variables. *)

val v' : b -> Model.var -> Bdd.t
(** Next copy of {!v}. *)

val is : b -> Model.var -> Model.value -> Bdd.t
(** [is b x value] — variable [x] has this value (current copy).
    Raises [Invalid_argument] if the value is outside the domain. *)

val is' : b -> Model.var -> Model.value -> Bdd.t
(** Next copy of {!is}. *)

val eq : b -> Model.var -> Model.var -> Bdd.t
(** Two same-type variables are equal (current copies). *)

val unchanged : b -> Model.var -> Bdd.t
(** The variable keeps its value across the transition. *)

val keep_all_but : b -> Model.var list -> Bdd.t
(** Frame condition: every declared variable not listed is unchanged. *)

(** {1 Accumulating the model} *)

val add_space : b -> Bdd.t -> unit
(** Conjoin a state-space invariant (e.g. an [INVAR] constraint): the
    model's [space] — and hence the initial states and both endpoints
    of every transition — is restricted to it. *)

val add_init : b -> Bdd.t -> unit
(** Conjoin a constraint on initial states. *)

val add_trans : b -> Bdd.t -> unit
(** Conjoin a transition constraint (may mention both copies). *)

val add_trans_case : b -> Bdd.t -> unit
(** Disjoin a transition alternative: the final relation is
    [conj add_trans * /\ disj add_trans_case *] (the disjunctive part
    is ignored when no case was added).  Convenient for interleaving
    models: one case per process/gate. *)

val add_fairness : b -> Bdd.t -> unit
(** Add a fairness constraint (a state set to be visited infinitely
    often). *)

val add_label : b -> string -> Bdd.t -> unit
(** Name an atomic proposition for use by formula parsers and
    printers. *)

val label_all_bools : b -> unit
(** Add a label for every declared boolean variable, named after it. *)

val clusters : b -> Bdd.t list
(** The accumulated transition clusters: every {!add_trans} conjunct
    plus (when any case was added) the disjunction of the
    {!add_trans_case}s as one more cluster.  Their conjunction is the
    monolithic relation {!build} installs; handing them to
    {!Model.with_partition} later (e.g. when a recovery ladder degrades
    to a partitioned relation) avoids re-deriving them. *)

val build : b -> Model.t
(** Seal the model.  The builder can keep being used afterwards (e.g.
    to build a variant), but this is rarely useful. *)

val build_partitioned : b -> Model.t
(** Like {!build}, but install the accumulated [add_trans] conjuncts
    (plus, if any, the disjunction of the [add_trans_case]s as one
    extra cluster) as a conjunctively partitioned transition relation
    with early quantification — see {!Model.with_partition}. *)

val totalize : Model.t -> Model.t
(** Add a self-loop to every deadlocked state, making the transition
    relation total (required by CTL semantics). *)
