type b = {
  bman : Bdd.man;
  mutable vars : Model.var list;  (* reversed *)
  mutable nbits : int;
  mutable space : Bdd.t;
  mutable init : Bdd.t;
  mutable trans_conjs : Bdd.t list;  (* reversed *)
  mutable trans_cases : Bdd.t list;
  (* memoized disjunction of trans_cases, so repeated [clusters] calls
     (build, then the compiler exposing them) cost no extra BDD work *)
  mutable cases_disj : Bdd.t option;
  mutable fairness : Bdd.t list;
  mutable labels : (string * Bdd.t) list;
}

let create ?man () =
  let bman = match man with Some m -> m | None -> Bdd.create () in
  {
    bman;
    vars = [];
    nbits = 0;
    space = Bdd.one bman;
    init = Bdd.one bman;
    trans_conjs = [];
    trans_cases = [];
    cases_disj = None;
    fairness = [];
    labels = [];
  }

let man b = b.bman

let declare b name vtype =
  if List.exists (fun v -> String.equal v.Model.var_name name) b.vars then
    invalid_arg ("Builder: duplicate variable " ^ name);
  let v = Model.mk_var ~name ~vtype ~first_bit:b.nbits in
  b.vars <- v :: b.vars;
  b.nbits <- b.nbits + Array.length v.Model.bits;
  v

let bool_var b name = declare b name Model.Bool

let enum_var b name consts =
  if consts = [] then invalid_arg "Builder.enum_var: empty enumeration";
  if List.length (List.sort_uniq String.compare consts) <> List.length consts
  then invalid_arg "Builder.enum_var: duplicate constants";
  declare b name (Model.Enum consts)

let range_var b name lo hi =
  if lo > hi then invalid_arg "Builder.range_var: empty range";
  declare b name (Model.Range (lo, hi))

(* Install a static variable order: the given model variables' bits in
   sequence, each state bit contributing its interleaved
   (current, next) BDD-variable pair.  Meant to be called after all
   declarations and before any constraint is added — on the still-empty
   manager the installation is free. *)
let seed_order b vars_in_order =
  let nbits =
    List.fold_left
      (fun acc v -> acc + Array.length v.Model.bits)
      0 vars_in_order
  in
  if nbits <> b.nbits then
    invalid_arg "Builder.seed_order: order does not cover the declared variables";
  let ord = Array.make (2 * b.nbits) (-1) in
  let l = ref 0 in
  List.iter
    (fun v ->
      Array.iter
        (fun k ->
          ord.(!l) <- 2 * k;
          ord.(!l + 1) <- (2 * k) + 1;
          l := !l + 2)
        v.Model.bits)
    vars_in_order;
  Bdd.Reorder.set_order b.bman ord

let bit_cur b k = Bdd.var b.bman (2 * k)
let bit_nxt b k = Bdd.var b.bman ((2 * k) + 1)

let v b (x : Model.var) =
  match x.vtype with
  | Model.Bool -> bit_cur b x.bits.(0)
  | Model.Enum _ | Model.Range _ ->
    invalid_arg "Builder.v: not a boolean variable"

let v' b (x : Model.var) =
  match x.vtype with
  | Model.Bool -> bit_nxt b x.bits.(0)
  | Model.Enum _ | Model.Range _ ->
    invalid_arg "Builder.v': not a boolean variable"

let index_of_value (x : Model.var) (value : Model.value) =
  match (x.vtype, value) with
  | Model.Bool, Model.B bv -> if bv then 1 else 0
  | Model.Enum names, Model.S s -> (
    let rec find i = function
      | [] -> invalid_arg ("Builder: value " ^ s ^ " not in domain of " ^ x.var_name)
      | n :: rest -> if String.equal n s then i else find (i + 1) rest
    in
    find 0 names)
  | Model.Range (lo, hi), Model.I i ->
    if i < lo || i > hi then
      invalid_arg ("Builder: value out of range for " ^ x.var_name)
    else i - lo
  | (Model.Bool | Model.Enum _ | Model.Range _), (Model.B _ | Model.S _ | Model.I _) ->
    invalid_arg ("Builder: type mismatch for " ^ x.var_name)

let encode b (x : Model.var) ~primed idx =
  let lits =
    Array.to_list x.bits
    |> List.mapi (fun k bit ->
           let lit = if primed then bit_nxt b bit else bit_cur b bit in
           if idx land (1 lsl k) <> 0 then lit else Bdd.not_ b.bman lit)
  in
  Bdd.conj b.bman lits

let is b x value = encode b x ~primed:false (index_of_value x value)
let is' b x value = encode b x ~primed:true (index_of_value x value)

let eq b (x : Model.var) (y : Model.var) =
  if Array.length x.bits <> Array.length y.bits then
    invalid_arg "Builder.eq: width mismatch";
  let parts =
    Array.to_list (Array.mapi (fun k bx ->
        Bdd.iff b.bman (bit_cur b bx) (bit_cur b y.Model.bits.(k))) x.bits)
  in
  Bdd.conj b.bman parts

let unchanged b (x : Model.var) =
  let parts =
    Array.to_list x.bits
    |> List.map (fun k -> Bdd.iff b.bman (bit_cur b k) (bit_nxt b k))
  in
  Bdd.conj b.bman parts

let keep_all_but b changing =
  let keep v =
    not
      (List.exists (fun c -> String.equal c.Model.var_name v.Model.var_name)
         changing)
  in
  List.filter keep b.vars |> List.map (unchanged b) |> Bdd.conj b.bman

let add_space b f = b.space <- Bdd.and_ b.bman b.space f
let add_init b f = b.init <- Bdd.and_ b.bman b.init f
let add_trans b f = b.trans_conjs <- f :: b.trans_conjs
let add_trans_case b f =
  b.trans_cases <- f :: b.trans_cases;
  b.cases_disj <- None
let add_fairness b f = b.fairness <- b.fairness @ [ f ]
let add_label b name f = b.labels <- (name, f) :: b.labels

let label_all_bools b =
  List.iter
    (fun x ->
      match x.Model.vtype with
      | Model.Bool -> add_label b x.Model.var_name (v b x)
      | Model.Enum _ | Model.Range _ -> ())
    b.vars

(* The transition clusters: every add_trans conjunct, plus (when any
   case was added) the disjunction of the cases as one more cluster. *)
let clusters b =
  let conjs = List.rev b.trans_conjs in
  match b.trans_cases with
  | [] -> conjs
  | cases ->
    let d =
      match b.cases_disj with
      | Some d -> d
      | None ->
        let d = Bdd.disj b.bman cases in
        b.cases_disj <- Some d;
        d
    in
    conjs @ [ d ]

let build b =
  let trans = Bdd.conj b.bman (clusters b) in
  Model.make ~man:b.bman ~vars:(List.rev b.vars) ~nbits:b.nbits
    ~space:b.space ~init:b.init ~trans ~fairness:b.fairness
    ~labels:(List.rev b.labels) ()

let build_partitioned b =
  let m = build b in
  Model.with_partition m (clusters b)

let totalize (m : Model.t) =
  let dead = Model.deadlocks m in
  if Bdd.is_zero dead then m
  else
    let identity =
      List.init m.nbits (fun k ->
          Bdd.iff m.man (Model.cur_bit m k) (Model.nxt_bit m k))
      |> Bdd.conj m.man
    in
    let loops = Bdd.and_ m.man dead identity in
    let trans = Bdd.or_ m.man m.trans loops in
    Model.make ~man:m.man ~vars:(Array.to_list m.vars) ~nbits:m.nbits
      ~space:m.space ~init:m.init ~trans ~fairness:m.fairness ~labels:m.labels
      ()
