(** Symbolic Kripke structures.

    A labelled state-transition graph [(AP, S, L, N, S0)] (Section 3 of
    the paper) represented with BDDs: the state space is the set of
    assignments to a vector of boolean {e bits}, grouped into named
    variables (booleans, enumerations, integer ranges); the transition
    relation [N(v, v')] is a BDD over two interleaved copies of the
    bits; fairness constraints are state sets.

    Bit [b] of the state vector is BDD variable [2b] in the current
    copy and [2b + 1] in the next copy — the interleaved order that
    keeps transition relations small. *)

(** The type of a state variable's values. *)
type vtype =
  | Bool
  | Enum of string list  (** named constants, in declaration order *)
  | Range of int * int   (** inclusive integer interval *)

type var = private {
  var_name : string;
  vtype : vtype;
  bits : int array;  (** state-vector bit indices, least significant first *)
}
(** A state variable and the bits that encode it. *)

type state = bool array
(** A concrete state: one boolean per state-vector bit. *)

(** A concrete value of a variable. *)
type value = B of bool | S of string | I of int

type schedule_step = private {
  cluster : Bdd.t;
  quant : Bdd.t;
}
(** One step of an early-quantification image schedule: conjoin
    [cluster], then quantify the variables of [quant] (which occur in
    no later cluster). *)

type t = private {
  man : Bdd.man;
  vars : var array;
  nbits : int;
  space : Bdd.t;    (** valid encodings (non-power-of-two domains) *)
  init : Bdd.t;     (** S0, a subset of [space] *)
  trans : Bdd.t;    (** N(v, v'), both endpoints within [space] *)
  pre_schedule : schedule_step list option;
      (** when set, {!pre} uses the partitioned relation *)
  post_schedule : schedule_step list option;
  fairness : Bdd.t list;  (** fairness constraints, as state sets *)
  labels : (string * Bdd.t) list;  (** named atomic propositions *)
  mutable fair_memo : (Bdd.t * string) option;
      (** cached fair-EG fixpoint tagged with the producing engine's
          name; see {!fair_memo} *)
  mutable reach_memo : Bdd.t option;
      (** cached reachable-state fixpoint; see {!reach_memo} *)
}
(** A symbolic Kripke structure.  Use {!make} (or [Builder]) to obtain
    one; the constructor enforces the [space] invariants. *)

val make :
  man:Bdd.man ->
  vars:var list ->
  nbits:int ->
  ?space:Bdd.t ->
  init:Bdd.t ->
  trans:Bdd.t ->
  ?fairness:Bdd.t list ->
  ?labels:(string * Bdd.t) list ->
  unit ->
  t
(** Assemble a model.  [init] and both endpoints of [trans] are
    conjoined with [space] (default: all encodings valid), and fairness
    constraints are intersected with [space].  The model's BDDs are
    registered as garbage-collection roots with [man] (see {!roots} and
    [Bdd.gc]), so an explicit collection never sweeps them. *)

val roots : t -> Bdd.t list
(** Every BDD the model owns (space, init, transition relation,
    schedules, fairness constraints, labels) — the set {!make} registers
    with [Bdd.add_root]. *)

val with_partition : t -> Bdd.t list -> t
(** [with_partition m clusters] — the same model with image
    computations ({!pre}, {!post}, and hence every checker built on
    them) evaluated over the {e conjunctively partitioned} transition
    relation [clusters] with early quantification: each cluster is
    conjoined in turn and the next-state (resp. current-state)
    variables that appear in no later cluster are quantified out
    immediately, keeping intermediate BDDs small (the technique of
    Burch-Clarke-Long used by SMV).  The conjunction of [clusters]
    must equal the model's monolithic transition relation (within
    [space]); raises [Invalid_argument] otherwise. *)

val partitioned : t -> bool
(** Is a partitioned schedule installed? *)

val clone_into : Bdd.man -> t -> t
(** [clone_into dst m] — a deep copy of the model whose every BDD
    (space, init, transition relation, schedules, fairness, labels)
    lives in [dst], built with [Bdd.transfer]; the clone registers its
    own garbage-collection roots with [dst].  The copy reads only
    immutable node structure, never the source manager's tables, so
    several domains may clone the same model concurrently — this is how
    each worker of a parallel run gets a private model on a private
    single-domain manager, keeping BDD hot paths lock-free.  A clone is
    observationally identical: verdicts, witnesses and traces computed
    on it are bit-for-bit those of the original.  Raises
    [Invalid_argument] when [dst] is the model's own manager. *)

val with_fairness : t -> Bdd.t list -> t
(** The same model under different fairness constraints (cheap: all
    BDDs are shared).  Used by the CTL* witness machinery, which turns
    [GF p] conjuncts into fairness constraints (Section 7).  The
    fair-states cache is reset — it depends on the constraints. *)

val fair_memo : t -> (Bdd.t * string) option
(** The cached set of fair states ([Ctl.Fair.fair_states] computes and
    stores it), valid for this model's current fairness constraints,
    paired with the name of the fair engine that produced it
    ([Ctl.Fair.engine_name]).  The tag keeps the memo honest when a
    warm server switches engines between requests: a consumer must
    recompute on a tag mismatch rather than reuse the other engine's
    diagram.  Rooted with the model's other diagrams, so it survives
    [Bdd.gc] and reordering. *)

val set_fair_memo : t -> (Bdd.t * string) option -> unit
(** Store (or clear) the fair-states cache.  Intended for the fair
    checking layer; the cached diagram must live in the model's own
    manager. *)

val reach_memo : t -> Bdd.t option
(** The cached reachable-state set ({!reachable} computes and stores
    it).  Unlike {!fair_memo} it depends on nothing mutable — only
    [init] and [trans] — so it is never invalidated: {!with_fairness}
    and {!with_partition} keep it, {!clone_into} transfers it, and a
    warm check server reuses it across every request on the same
    model.  Rooted with the model's other diagrams, so it survives
    [Bdd.gc] and reordering. *)

val set_reach_memo : t -> Bdd.t option -> unit
(** Store (or clear) the reachability cache; the cached diagram must
    live in the model's own manager. *)

val mk_var : name:string -> vtype:vtype -> first_bit:int -> var
(** Lay out a variable starting at bit [first_bit]; used by frontends
    that do their own bit allocation.  Raises [Invalid_argument] for an
    empty enumeration or an empty range. *)

val width : vtype -> int
(** Number of bits needed for a variable of this type. *)

(** {1 Current / next copies} *)

val cur_bit : t -> int -> Bdd.t
(** BDD variable for bit [b] in the current copy. *)

val nxt_bit : t -> int -> Bdd.t
(** BDD variable for bit [b] in the next copy. *)

val prime : t -> Bdd.t -> Bdd.t
(** Rename a current-copy predicate to the next copy. *)

val unprime : t -> Bdd.t -> Bdd.t
(** Rename a next-copy predicate to the current copy. *)

val cur_cube : t -> Bdd.t
(** Quantification cube of all current-copy BDD variables. *)

val nxt_cube : t -> Bdd.t
(** Quantification cube of all next-copy BDD variables. *)

(** {1 Images} *)

val pre : t -> Bdd.t -> Bdd.t
(** [pre m s] — states with at least one successor in [s]; the symbolic
    [EX] operator: exists v'. [N(v,v') /\ s(v')]. *)

val post : t -> Bdd.t -> Bdd.t
(** [post m s] — successors of states in [s]. *)

val reachable : ?limits:Bdd.Limits.t -> t -> Bdd.t
(** Least fixpoint of [post] from [init].  [limits] charges one step
    per frontier iteration and is polled inside the image computations
    (when attached to the manager); a breach raises
    [Bdd.Limits.Exhausted].  Memoised on the model ({!reach_memo}):
    only the first completed call computes; later calls — including
    warm check-server requests on a cached model — return the stored
    set without charging any steps. *)

val deadlocks : t -> Bdd.t
(** States of [space] with no successor.  CTL semantics (and the
    witness algorithms) assume a total transition relation; a non-empty
    result means the model should be repaired, e.g. with
    {!Builder.totalize}. *)

val count_states : t -> Bdd.t -> float
(** Number of states in a set (exact while below 2^53). *)

(** {1 Concrete states} *)

val var_by_name : t -> string -> var
(** Raises [Not_found]. *)

val label : t -> string -> Bdd.t
(** Look up an atomic proposition; raises [Not_found]. *)

val value_of_state : var -> state -> value
(** Decode a variable's value from a concrete state.  Out-of-domain
    encodings of enums / ranges raise [Invalid_argument] (cannot happen
    for states drawn from [space]). *)

val state_to_bdd : t -> state -> Bdd.t
(** The singleton set containing a state (a full cube over the current
    copy). *)

val pick_state : t -> Bdd.t -> state option
(** A deterministic representative of a state set (lexicographically
    least within [space]); [None] if the set is empty.  The result is a
    {e total} assignment: state bits the set does not constrain are
    pinned to [false], so [state_to_bdd] of the result is always a
    subset of the set.  Raises [Invalid_argument] if the set constrains
    next-copy variables (it is then not a state set). *)

val pick_random_state : t -> rng:Random.State.t -> Bdd.t -> state option
(** A uniformly random member of a state set, chosen symbolically (one
    weighted cofactor descent per state bit — no enumeration, so it is
    safe on sets with astronomically many states); [None] if the set is
    empty.  Raises [Invalid_argument] if the set constrains next-copy
    variables. *)

val pick_successor : t -> state -> Bdd.t -> state option
(** [pick_successor m s target] — a successor of [s] inside [target]. *)

val states_in : t -> Bdd.t -> state list
(** Enumerate a state set (intended for small sets / tests). *)

val eval_in_state : t -> Bdd.t -> state -> bool
(** Does a state belong to a (current-copy) set? *)

(** {1 Printing} *)

val pp_value : Format.formatter -> value -> unit

val pp_state : t -> Format.formatter -> state -> unit
(** All variables, one [name = value] per line. *)

val pp_state_diff : t -> prev:state -> Format.formatter -> state -> unit
(** Only the variables whose value changed w.r.t. [prev] (SMV style). *)

(** {1 Skeletons (warm-state persistence)} *)

type skeleton
(** The pure-data shadow of a model: variable layout plus the [Bdd.t]
    handles of every diagram the model owns (including schedules and
    the fair/reachable memos).  Handles are immediate ints, so a
    skeleton marshals as plain data — but it is only meaningful
    against the exact manager it was taken from, or a [Bdd.Snapshot]
    restore of that manager (snapshots preserve handles bit-for-bit). *)

val skeleton : t -> skeleton
(** Capture [m]'s skeleton.  The model is read, not mutated. *)

val of_skeleton : man:Bdd.man -> skeleton -> t
(** Rebuild a model over [man] from a skeleton taken against it (or
    against the manager its snapshot came from).  Re-registers GC
    roots and re-declares the current/next reordering pair groups,
    exactly as {!make} does. *)
