type vtype =
  | Bool
  | Enum of string list
  | Range of int * int

type var = {
  var_name : string;
  vtype : vtype;
  bits : int array;
}

type state = bool array

type value = B of bool | S of string | I of int

(* One step of an early-quantification schedule: conjoin [cluster],
   then existentially quantify [quant] (variables that occur in no
   later cluster). *)
type schedule_step = {
  cluster : Bdd.t;
  quant : Bdd.t;
}

type t = {
  man : Bdd.man;
  vars : var array;
  nbits : int;
  space : Bdd.t;
  init : Bdd.t;
  trans : Bdd.t;
  pre_schedule : schedule_step list option;
  post_schedule : schedule_step list option;
  fairness : Bdd.t list;
  labels : (string * Bdd.t) list;
  (* Cached fair-EG greatest fixpoint (Ctl.Fair.fair_states): computed
     once per (model, fairness) and reused across specs.  Owned here so
     it is rooted with the rest of the model's diagrams.  The string
     tags which fair engine produced the set (Ctl.Fair.engine_name) —
     a warm server switching engines between requests must recompute,
     never reuse the other engine's diagram silently. *)
  mutable fair_memo : (Bdd.t * string) option;
  (* Cached reachable-state fixpoint ([reachable]): depends only on
     [init] and [trans], both immutable, so it is valid for the model's
     whole life — a warm check server reuses it across requests.  Same
     rooting story as [fair_memo]. *)
  mutable reach_memo : Bdd.t option;
}

(* Every BDD a model owns, for GC root registration: as long as the
   model record itself is referenced, these diagrams must survive
   [Bdd.gc]. *)
let roots m =
  let schedule_roots = function
    | None -> []
    | Some steps ->
      List.concat_map (fun s -> [ s.cluster; s.quant ]) steps
  in
  (m.space :: m.init :: m.trans :: m.fairness)
  @ List.map snd m.labels
  @ schedule_roots m.pre_schedule
  @ schedule_roots m.post_schedule
  @ Option.to_list (Option.map fst m.fair_memo)
  @ Option.to_list m.reach_memo

let register_roots m =
  ignore (Bdd.add_root m.man (fun () -> roots m) : Bdd.root);
  m

let cardinal = function
  | Bool -> 2
  | Enum vs -> List.length vs
  | Range (lo, hi) -> hi - lo + 1

let width ty =
  let n = cardinal ty in
  if n <= 0 then invalid_arg "Kripke.width: empty domain";
  let rec bits_for k acc = if k <= 1 then max acc 1 else bits_for ((k + 1) / 2) (acc + 1) in
  if n = 1 then 1 else bits_for n 0

let mk_var ~name ~vtype ~first_bit =
  if cardinal vtype <= 0 then invalid_arg "Kripke.mk_var: empty domain";
  let w = width vtype in
  { var_name = name; vtype; bits = Array.init w (fun i -> first_bit + i) }

let with_fairness m fairness =
  register_roots
    { m with
      fairness = List.map (Bdd.and_ m.man m.space) fairness;
      fair_memo = None }

let fair_memo m = m.fair_memo
let set_fair_memo m f = m.fair_memo <- f
let reach_memo m = m.reach_memo
let set_reach_memo m r = m.reach_memo <- r

let cur_bit m b = Bdd.var m.man (2 * b)
let nxt_bit m b = Bdd.var m.man ((2 * b) + 1)
let prime m f = Bdd.rename m.man f (fun v -> v + 1)
let unprime m f = Bdd.rename m.man f (fun v -> v - 1)

let cur_cube_of man nbits = Bdd.cube man (List.init nbits (fun b -> 2 * b))
let nxt_cube_of man nbits = Bdd.cube man (List.init nbits (fun b -> (2 * b) + 1))

let cur_cube m = cur_cube_of m.man m.nbits
let nxt_cube m = nxt_cube_of m.man m.nbits

(* Encoding of "variable (copy) has value index i" as a cube. *)
let bits_encode man bits ~primed i =
  let lits =
    Array.to_list bits
    |> List.mapi (fun k b ->
           let bv = (2 * b) + if primed then 1 else 0 in
           if i land (1 lsl k) <> 0 then Bdd.var man bv else Bdd.nvar man bv)
  in
  Bdd.conj man lits

(* Valid-encoding constraint for one variable (current copy). *)
let var_space man v =
  let n = cardinal v.vtype in
  if n = 1 lsl Array.length v.bits then Bdd.one man
  else
    Bdd.disj man
      (List.init n (fun i -> bits_encode man v.bits ~primed:false i))

let make ~man ~vars ~nbits ?space ~init ~trans ?(fairness = []) ?(labels = [])
    () =
  let vars = Array.of_list vars in
  let declared =
    Array.to_list vars
    |> List.concat_map (fun v -> Array.to_list v.bits)
    |> List.sort_uniq Stdlib.compare
  in
  if List.exists (fun b -> b < 0 || b >= nbits) declared then
    invalid_arg "Kripke.make: variable bit out of range";
  let enc_space =
    Array.fold_left (fun acc v -> Bdd.and_ man acc (var_space man v))
      (Bdd.one man) vars
  in
  let space =
    match space with None -> enc_space | Some s -> Bdd.and_ man s enc_space
  in
  let space' =
    (* prime: shift every current var up by one *)
    Bdd.rename man space (fun v -> v + 1)
  in
  let trans = Bdd.conj man [ trans; space; space' ] in
  let init = Bdd.and_ man init space in
  let fairness = List.map (Bdd.and_ man space) fairness in
  (* Each state bit owns a (current, next) BDD-variable pair; declare
     them so dynamic reordering sifts the pair as one block and never
     separates the interleaved copies. *)
  Bdd.Reorder.set_pairs man (List.init nbits (fun b -> (2 * b, (2 * b) + 1)));
  register_roots
    {
      man; vars; nbits; space; init; trans;
      pre_schedule = None; post_schedule = None;
      fairness; labels; fair_memo = None; reach_memo = None;
    }

(* Eliminate variables cluster by cluster: each step conjoins its
   cluster and immediately quantifies the variables no later cluster
   mentions — the standard early-quantification image computation for
   conjunctively partitioned transition relations. *)
let image_with_schedule man schedule operand =
  List.fold_left
    (fun work step -> Bdd.and_exists man step.quant step.cluster work)
    operand schedule

(* Build the schedule for eliminating the variables selected by
   [relevant] (parity of the BDD variable index distinguishes the
   copies), processing clusters in the given order. *)
let make_schedule man ~relevant ~all_cube clusters =
  let var_sets = List.map (fun c -> Bdd.support man c) clusters in
  (* Variables still alive after position i: union of supports of the
     clusters after it. *)
  let rec schedules clusters var_sets =
    match (clusters, var_sets) with
    | [], [] -> []
    | c :: cs, vs :: vss ->
      let later = List.concat vss in
      let mine =
        List.filter
          (fun v -> relevant v && not (List.mem v later))
          vs
      in
      { cluster = c; quant = Bdd.cube man mine } :: schedules cs vss
    | _, _ -> assert false
  in
  match clusters with
  | [] -> [ { cluster = Bdd.one man; quant = all_cube } ]
  | _ :: _ ->
    let steps = schedules clusters var_sets in
    (* Relevant variables appearing in no cluster at all (e.g. a frame
       variable of the operand) must still be eliminated: fold them
       into a final step. *)
    let covered = List.concat var_sets in
    let missing =
      Bdd.support man all_cube
      |> List.filter (fun v -> not (List.mem v covered))
    in
    if missing = [] then steps
    else steps @ [ { cluster = Bdd.one man; quant = Bdd.cube man missing } ]

let with_partition m clusters =
  let check =
    Bdd.conj m.man
      (clusters @ [ m.space; Bdd.rename m.man m.space (fun v -> v + 1) ])
  in
  if not (Bdd.equal check m.trans) then
    invalid_arg
      "Kripke.with_partition: clusters do not conjoin to the transition \
       relation";
  let space' = Bdd.rename m.man m.space (fun v -> v + 1) in
  let parts = m.space :: space' :: clusters in
  let pre_schedule =
    make_schedule m.man
      ~relevant:(fun v -> v mod 2 = 1)
      ~all_cube:(nxt_cube_of m.man m.nbits)
      parts
  in
  let post_schedule =
    make_schedule m.man
      ~relevant:(fun v -> v mod 2 = 0)
      ~all_cube:(cur_cube_of m.man m.nbits)
      parts
  in
  register_roots
    { m with
      pre_schedule = Some pre_schedule;
      post_schedule = Some post_schedule }

let partitioned m = m.pre_schedule <> None

(* Deep-copy a model into another manager: every BDD goes through
   [Bdd.transfer] (which reads only immutable node structure, so
   several worker domains may clone the same source model at once), the
   variable layout is duplicated, and the clone registers its own GC
   roots with the destination manager.  Because transfer preserves
   semantics exactly and every choice the checking / witness layers
   make is semantic (lexicographically least cubes, fixpoints), a clone
   produces bit-identical verdicts and traces to the original. *)
let clone_into dst m =
  if dst == m.man then invalid_arg "Kripke.clone_into: same manager";
  (* Replicate ordering metadata before copying any diagram: installing
     the source's variable order on the (typically empty) destination
     keeps [Bdd.transfer] on its structural fast path, and the pair
     grouping must survive so the clone's own reorders stay grouped.
     Identity orders are skipped — [set_order] is then pure overhead. *)
  let src_order = Bdd.Reorder.order m.man in
  let identity = ref true in
  Array.iteri (fun l v -> if l <> v then identity := false) src_order;
  if not !identity then Bdd.Reorder.set_order dst src_order;
  Bdd.Reorder.set_pairs dst (Bdd.Reorder.pairs m.man);
  let t b = Bdd.transfer ~src:m.man ~dst b in
  let clone_steps =
    List.map (fun s -> { cluster = t s.cluster; quant = t s.quant })
  in
  register_roots
    {
      man = dst;
      vars = Array.map (fun v -> { v with bits = Array.copy v.bits }) m.vars;
      nbits = m.nbits;
      space = t m.space;
      init = t m.init;
      trans = t m.trans;
      pre_schedule = Option.map clone_steps m.pre_schedule;
      post_schedule = Option.map clone_steps m.post_schedule;
      fairness = List.map t m.fairness;
      labels = List.map (fun (name, b) -> (name, t b)) m.labels;
      fair_memo = Option.map (fun (z, tag) -> (t z, tag)) m.fair_memo;
      reach_memo = Option.map t m.reach_memo;
    }

let pre m s =
  match m.pre_schedule with
  | Some schedule -> image_with_schedule m.man schedule (prime m s)
  | None ->
    let s' = prime m s in
    Bdd.and_exists m.man (nxt_cube m) m.trans s'

let post m s =
  match m.post_schedule with
  | Some schedule -> unprime m (image_with_schedule m.man schedule s)
  | None ->
    let img = Bdd.and_exists m.man (cur_cube m) m.trans s in
    unprime m img

(* Charge one fixpoint iteration against the optional limits.  Also a
   reorder checkpoint: the fixpoint engines root their frontiers, so a
   pending auto-reorder may safely run between iterations (it only
   does when the caller opted in via [Bdd.Reorder.with_checkpoints]). *)
let tick m limits =
  Bdd.Reorder.checkpoint m.man;
  match limits with None -> () | Some l -> Bdd.Limits.step m.man l

let reachable ?limits m =
  (* Memoised: the fixpoint depends only on the immutable [init] and
     [trans], so once computed it is stored on the model (rooted with
     its other diagrams) and every later call — any number of specs or
     warm-server requests later — returns it outright.  The memo is
     only written by a {e completed} fixpoint: a breach propagates
     before the store, so a later, better-budgeted call recomputes. *)
  match m.reach_memo with
  | Some r -> r
  | None ->
    (* Root the frontier so a GC triggered mid-fixpoint cannot sweep
       the running approximation. *)
    let frontier = ref m.init in
    let r =
      Bdd.with_root m.man
        (fun () -> [ !frontier ])
        (fun () ->
          let rec go r =
            tick m limits;
            let r' = Bdd.or_ m.man r (post m r) in
            if Bdd.equal r r' then r
            else begin
              frontier := r';
              go r'
            end
          in
          go m.init)
    in
    m.reach_memo <- Some r;
    r

let deadlocks m =
  Bdd.diff m.man m.space (pre m m.space)

let count_states m set =
  Bdd.sat_count m.man set (2 * m.nbits) /. Float.pow 2.0 (float_of_int m.nbits)

let var_by_name m name =
  match Array.find_opt (fun v -> String.equal v.var_name name) m.vars with
  | Some v -> v
  | None -> raise Not_found

let label m name = List.assoc name m.labels

let value_of_state v (st : state) =
  let idx =
    Array.to_list v.bits
    |> List.mapi (fun k b -> if st.(b) then 1 lsl k else 0)
    |> List.fold_left ( + ) 0
  in
  match v.vtype with
  | Bool -> B (idx <> 0)
  | Enum names ->
    (match List.nth_opt names idx with
    | Some s -> S s
    | None -> invalid_arg "Kripke.value_of_state: invalid enum encoding")
  | Range (lo, hi) ->
    if lo + idx > hi then invalid_arg "Kripke.value_of_state: out of range"
    else I (lo + idx)

let state_to_bdd m (st : state) =
  let lits =
    List.init m.nbits (fun b ->
        if st.(b) then cur_bit m b else Bdd.not_ m.man (cur_bit m b))
  in
  Bdd.conj m.man lits

let pick_state m set =
  let set = Bdd.and_ m.man set m.space in
  if Bdd.is_zero set then None
  else begin
    (* [Bdd.any_sat] returns a partial cube; bits it leaves unmentioned
       are don't-cares, and pinning a don't-care to [false] stays inside
       the set, so the result is a genuine single state. *)
    let partial = Bdd.any_sat m.man set in
    let st = Array.make m.nbits false in
    List.iter
      (fun (v, b) -> if v mod 2 = 0 then st.(v / 2) <- b)
      partial;
    (* A state set must constrain current-copy variables only; if the
       pinned state fell outside the set, the cube required a next-copy
       variable we cannot represent in a state. *)
    if not (Bdd.eval m.man set (fun v -> v mod 2 = 0 && st.(v / 2))) then
      invalid_arg "Kripke.pick_state: set constrains next-state variables";
    Some st
  end

(* Uniform random member of a state set, without enumerating it: walk
   the current-copy bits in order, choosing each bit with probability
   proportional to the satisfying-assignment count of the corresponding
   cofactor.  Both cofactors leave the same next-copy variables free,
   so the counts are proportional to state counts and the result is
   uniform over the set.  O(nbits * diagram size) — no exponential
   enumeration, unlike {!states_in}. *)
let pick_random_state m ~rng set =
  let set = Bdd.and_ m.man set m.space in
  if Bdd.is_zero set then None
  else begin
    let st = Array.make m.nbits false in
    let cur = ref set in
    for b = 0 to m.nbits - 1 do
      let v = 2 * b in
      let f0 = Bdd.restrict m.man !cur v false in
      let f1 = Bdd.restrict m.man !cur v true in
      let w0 =
        if Bdd.is_zero f0 then 0.0 else Bdd.sat_count m.man f0 (2 * m.nbits)
      in
      let w1 =
        if Bdd.is_zero f1 then 0.0 else Bdd.sat_count m.man f1 (2 * m.nbits)
      in
      let take_true =
        if w1 = 0.0 then false
        else if w0 = 0.0 then true
        else Random.State.float rng (w0 +. w1) < w1
      in
      st.(b) <- take_true;
      cur := if take_true then f1 else f0
    done;
    (* Same guard as {!pick_state}: a state set must constrain
       current-copy variables only. *)
    if not (Bdd.eval m.man set (fun v -> v mod 2 = 0 && st.(v / 2))) then
      invalid_arg "Kripke.pick_random_state: set constrains next-state variables";
    Some st
  end

let pick_successor m st target =
  let succ = post m (state_to_bdd m st) in
  pick_state m (Bdd.and_ m.man succ target)

let states_in m set =
  let set = Bdd.and_ m.man set m.space in
  let bdd_vars = List.init m.nbits (fun b -> 2 * b) in
  Bdd.fold_sat m.man set bdd_vars ~init:[] ~f:(fun acc a -> Array.copy a :: acc)
  |> List.rev

let eval_in_state m set (st : state) =
  Bdd.eval m.man set (fun v -> v mod 2 = 0 && st.(v / 2))

let pp_value ppf = function
  | B b -> Format.fprintf ppf "%d" (if b then 1 else 0)
  | S s -> Format.pp_print_string ppf s
  | I i -> Format.pp_print_int ppf i

let pp_state m ppf st =
  Array.iter
    (fun v ->
      Format.fprintf ppf "%s = %a@," v.var_name pp_value (value_of_state v st))
    m.vars

let pp_state_diff m ~prev ppf st =
  Array.iter
    (fun v ->
      let old_v = value_of_state v prev and new_v = value_of_state v st in
      if old_v <> new_v then
        Format.fprintf ppf "%s = %a@," v.var_name pp_value new_v)
    m.vars

(* ------------------------------------------------------------------ *)
(* Skeletons: the pure-data shadow of a model for warm-state
   persistence.  Every [Bdd.t] is an immediate int handle into the
   owning manager's packed store, so the record marshals as plain
   data; it is only meaningful against the exact manager it was taken
   from (or a [Bdd.Snapshot] restore of it, which preserves handles
   bit-for-bit). *)

type skeleton = {
  sk_vars : var array;
  sk_nbits : int;
  sk_space : Bdd.t;
  sk_init : Bdd.t;
  sk_trans : Bdd.t;
  sk_pre : (Bdd.t * Bdd.t) list option;
  sk_post : (Bdd.t * Bdd.t) list option;
  sk_fairness : Bdd.t list;
  sk_labels : (string * Bdd.t) list;
  sk_fair_memo : (Bdd.t * string) option;
  sk_reach_memo : Bdd.t option;
}

let skeleton m =
  let steps = List.map (fun s -> (s.cluster, s.quant)) in
  {
    sk_vars = Array.map (fun v -> { v with bits = Array.copy v.bits }) m.vars;
    sk_nbits = m.nbits;
    sk_space = m.space;
    sk_init = m.init;
    sk_trans = m.trans;
    sk_pre = Option.map steps m.pre_schedule;
    sk_post = Option.map steps m.post_schedule;
    sk_fairness = m.fairness;
    sk_labels = m.labels;
    sk_fair_memo = m.fair_memo;
    sk_reach_memo = m.reach_memo;
  }

let of_skeleton ~man sk =
  let steps = List.map (fun (cluster, quant) -> { cluster; quant }) in
  (* Same pair grouping [make] declares; on a snapshot-restored
     manager this rewrites the pairs it already carries (idempotent). *)
  Bdd.Reorder.set_pairs man
    (List.init sk.sk_nbits (fun b -> (2 * b, (2 * b) + 1)));
  register_roots
    {
      man;
      vars = sk.sk_vars;
      nbits = sk.sk_nbits;
      space = sk.sk_space;
      init = sk.sk_init;
      trans = sk.sk_trans;
      pre_schedule = Option.map steps sk.sk_pre;
      post_schedule = Option.map steps sk.sk_post;
      fairness = sk.sk_fairness;
      labels = sk.sk_labels;
      fair_memo = sk.sk_fair_memo;
      reach_memo = sk.sk_reach_memo;
    }
